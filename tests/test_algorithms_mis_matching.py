"""Luby variants, hash-Luby, ruling sets, line-graph matching, arboricity."""

from __future__ import annotations

import pytest

from repro.algorithms.arboricity import (
    ArbMIS,
    arb_mis_nonly_bound,
    arb_mis_product_bound,
    h_partition,
    peel_rounds,
)
from repro.algorithms.hash_luby import hash_luby_mis, hl_phases
from repro.algorithms.luby import luby_mc, luby_mis, mc_phases
from repro.algorithms.matching import (
    line_matching_bound,
    line_mis_matching,
)
from repro.algorithms.ruling_sets import (
    bitwise_beta,
    bitwise_ruling_set,
    sw_phases,
    sw_ruling_set,
)
from repro.core.domain import PhysicalDomain
from repro.graphs.params import density_arboricity
from repro.local import run, run_restricted
from repro.problems import (
    MAXIMAL_MATCHING,
    MIS,
    HPartitionProblem,
    RulingSetProblem,
)


class TestLuby:
    @pytest.mark.parametrize("seed", range(6))
    def test_always_valid_at_termination(self, small_gnp, seed):
        result = run(small_gnp, luby_mis(), seed=seed)
        assert MIS.is_solution(small_gnp, {}, result.outputs)

    def test_uniform(self):
        assert luby_mis().requires == ()
        assert luby_mis().randomized

    def test_logarithmic_scaling(self, catalog):
        """Rounds stay ≤ the MC budget on every catalogue graph."""
        for name, graph in catalog.items():
            if graph.n == 0:
                continue
            result = run(graph, luby_mis(), seed=1)
            assert result.rounds <= 2 * mc_phases(graph.n) + 2, name

    def test_mc_guarantee_on_seeds(self, medium_gnp):
        """The truncated variant succeeds well above its ρ=1/2 promise."""
        guesses = {"n": medium_gnp.n}
        wins = sum(
            MIS.is_solution(
                medium_gnp,
                {},
                run(medium_gnp, luby_mc(), guesses=guesses, seed=s).outputs,
            )
            for s in range(10)
        )
        assert wins >= 8

    def test_mc_with_tiny_guess_truncates(self, medium_gnp):
        result = run(medium_gnp, luby_mc(), guesses={"n": 1}, seed=0)
        assert result.rounds <= 2 * mc_phases(1) + 2


class TestHashLuby:
    def test_no_randomness_consumed(self, small_gnp):
        a = run(small_gnp, hash_luby_mis(), guesses={"n": small_gnp.n}, seed=1)
        b = run(small_gnp, hash_luby_mis(), guesses={"n": small_gnp.n}, seed=99)
        assert a.outputs == b.outputs

    def test_correct_across_catalog(self, catalog):
        for name, graph in catalog.items():
            result = run(graph, hash_luby_mis(), guesses={"n": graph.n})
            assert MIS.is_solution(graph, {}, result.outputs), name

    def test_phase_budget_grows_with_guess(self):
        assert hl_phases(4) < hl_phases(4096)


class TestBitwiseRulingSet:
    def test_valid_ruling_set(self, catalog):
        for name, graph in catalog.items():
            if graph.n == 0:
                continue
            m = graph.max_ident
            result = run(graph, bitwise_ruling_set(), guesses={"m": m})
            problem = RulingSetProblem(2, bitwise_beta(m))
            assert problem.is_solution(graph, {}, result.outputs), (
                name,
                problem.violations(graph, {}, result.outputs)[:3],
            )

    def test_rounds_equal_bit_length(self, small_gnp):
        m = small_gnp.max_ident
        result = run(small_gnp, bitwise_ruling_set(), guesses={"m": m})
        assert result.rounds <= m.bit_length()

    def test_deterministic(self, small_gnp):
        m = small_gnp.max_ident
        a = run(small_gnp, bitwise_ruling_set(), guesses={"m": m}, seed=1)
        b = run(small_gnp, bitwise_ruling_set(), guesses={"m": m}, seed=2)
        assert a.outputs == b.outputs


class TestSWRulingSet:
    @pytest.mark.parametrize("c", [1, 2, 3])
    def test_independence_always_holds(self, medium_gnp, c):
        result = run(
            medium_gnp, sw_ruling_set(c), guesses={"n": medium_gnp.n}, seed=3
        )
        rulers = {u for u, v in result.outputs.items() if v == 1}
        for u in rulers:
            assert not any(
                v in rulers for v in medium_gnp.neighbors(u)
            ), "two adjacent rulers"

    def test_phase_budget_shape(self):
        # larger c: more 2^c weight, weaker log exponent
        assert sw_phases(1, 2**20) > sw_phases(1, 2**4)
        assert sw_phases(3, 2**20) >= 2**3

    @pytest.mark.parametrize("c", [1, 2])
    def test_usually_a_valid_ruling_set(self, small_gnp, c):
        wins = 0
        problem = RulingSetProblem(2, 2 * (c + 1))
        for seed in range(6):
            result = run(
                small_gnp,
                sw_ruling_set(c),
                guesses={"n": small_gnp.n},
                seed=seed,
            )
            wins += problem.is_solution(small_gnp, {}, result.outputs)
        assert wins >= 3  # the declared weak-MC guarantee is 1/2


class TestLineMatching:
    def test_correct_with_good_guesses(self, catalog):
        box = line_mis_matching()
        for name in ("gnp48", "regular4_30", "tree40", "star24", "dumbbell"):
            graph = catalog[name]
            domain = PhysicalDomain(graph)
            guesses = {
                "Delta": max(1, graph.max_degree),
                "m": graph.max_ident,
            }
            budget = line_matching_bound().rounds(guesses)
            outputs, _ = box.run_restricted(
                domain,
                budget,
                inputs=None,
                guesses=guesses,
                seed=1,
                salt="t",
                default_output=0,
            )
            assert MAXIMAL_MATCHING.is_solution(graph, {}, outputs), (
                name,
                MAXIMAL_MATCHING.violations(graph, {}, outputs)[:3],
            )

    def test_values_contain_own_identity(self, small_gnp):
        """The invariant P_MM's gluing requires of canonical outputs."""
        box = line_mis_matching()
        domain = PhysicalDomain(small_gnp)
        guesses = {
            "Delta": max(1, small_gnp.max_degree),
            "m": small_gnp.max_ident,
        }
        budget = line_matching_bound().rounds(guesses)
        outputs, _ = box.run_restricted(
            domain, budget, inputs=None, guesses=guesses, seed=2,
            salt="t", default_output=0,
        )
        for u, value in outputs.items():
            assert small_gnp.ident[u] in value[1:]

    def test_edgeless_graph(self):
        import networkx as nx

        from repro.local import SimGraph

        graph = SimGraph.from_networkx(nx.empty_graph(5))
        box = line_mis_matching()
        outputs, _ = box.run_restricted(
            PhysicalDomain(graph),
            10,
            inputs=None,
            guesses={"Delta": 1, "m": 10},
            seed=0,
            salt="t",
            default_output=0,
        )
        assert MAXIMAL_MATCHING.is_solution(graph, {}, outputs)


class TestArboricity:
    def test_h_partition_validity(self, catalog):
        for name in ("tree40", "grid4x6", "forest3_32", "caterpillar"):
            graph = catalog[name]
            a = density_arboricity(graph.to_networkx())
            guesses = {"a": a, "n": graph.n}
            result = run_restricted(
                graph,
                h_partition(),
                peel_rounds(graph.n),
                default_output=0,
                guesses=guesses,
            )
            assert all(c >= 1 for c in result.outputs.values()), name
            problem = HPartitionProblem(threshold=4 * a)
            assert problem.is_solution(graph, {}, result.outputs), (
                name,
                problem.violations(graph, {}, result.outputs)[:3],
            )

    def test_arb_mis_with_correct_guesses(self, catalog):
        box = ArbMIS()
        for name in ("tree40", "grid4x6", "forest3_32"):
            graph = catalog[name]
            a = density_arboricity(graph.to_networkx())
            guesses = {"a": a, "n": graph.n}
            budget = int(arb_mis_product_bound().value(guesses)) + 10
            outputs, _ = box.run_restricted(
                PhysicalDomain(graph),
                budget,
                inputs=None,
                guesses=guesses,
                seed=1,
                salt="t",
                default_output=0,
            )
            assert MIS.is_solution(graph, {}, outputs), name

    def test_product_bound_dominates_nonly_regime(self):
        """The n-only bound is self-consistent on the √log-family guesses."""
        bound = arb_mis_nonly_bound()
        values = [bound.value({"n": n}) for n in (16, 256, 4096, 2**16)]
        assert values == sorted(values)

    def test_underestimated_arboricity_gives_garbage_not_crash(self, catalog):
        graph = catalog["forest3_32"]
        box = ArbMIS()
        outputs, _ = box.run_restricted(
            PhysicalDomain(graph),
            500,
            inputs=None,
            guesses={"a": 1, "n": 4},
            seed=1,
            salt="t",
            default_output=0,
        )
        assert set(outputs) == set(graph.nodes)
