"""Tests for wake-up patterns, the α synchronizer and Observation 2.1."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.local import (
    Broadcast,
    Chain,
    LocalAlgorithm,
    NodeProcess,
    SimGraph,
    run,
    run_with_wakeup,
    running_time,
    termination_times,
)


class MaxFlood(NodeProcess):
    """k-round flood of the maximum identity (deterministic).

    When run as a later Chain stage, the flood continues from the
    previous stage's output (the chain's default carry is
    ``(original_input, (prev_outputs...))``).
    """

    def __init__(self, ctx, k):
        super().__init__(ctx)
        self.k = k
        self.best = ctx.ident
        if (
            isinstance(ctx.input, tuple)
            and len(ctx.input) == 2
            and isinstance(ctx.input[1], tuple)
            and ctx.input[1]
            and isinstance(ctx.input[1][-1], int)
        ):
            self.best = max(self.best, ctx.input[1][-1])
        self.round = 0

    def start(self):
        if self.k == 0:
            self.finish(self.best)
            return None
        return Broadcast(self.best)

    def receive(self, inbox):
        self.round += 1
        for value in inbox.values():
            if isinstance(value, int):
                self.best = max(self.best, value)
        if self.round >= self.k:
            self.finish(self.best)
            return None
        return Broadcast(self.best)


def flood(k):
    return LocalAlgorithm(f"flood{k}", lambda ctx: MaxFlood(ctx, k))


def sim(graph):
    return SimGraph.from_networkx(graph)


WAKE_PATTERNS = [
    ("simultaneous", lambda g: {u: 0 for u in g.nodes}),
    ("staggered", lambda g: {u: g.ident[u] % 5 for u in g.nodes}),
    ("one-late", lambda g: {u: (20 if u == g.nodes[0] else 0) for u in g.nodes}),
    ("linear", lambda g: {u: i for i, u in enumerate(g.nodes)}),
]


class TestSynchronizerEquivalence:
    @pytest.mark.parametrize("name,pattern", WAKE_PATTERNS)
    def test_outputs_match_synchronous_run(self, name, pattern):
        g = sim(nx.random_regular_graph(3, 12, seed=2))
        wake = pattern(g)
        sync = run(g, flood(3))
        woken = run_with_wakeup(g, flood(3), wake)
        assert woken.outputs == sync.outputs

    def test_simultaneous_wakeup_matches_round_counts(self):
        g = sim(nx.path_graph(8))
        wake = {u: 0 for u in g.nodes}
        woken = run_with_wakeup(g, flood(2), wake)
        assert running_time(g, wake, woken.finish_round) == 2

    def test_termination_time_discounts_late_wakers(self):
        # The paper: u terminates in time t if it finishes at most t
        # rounds after everyone in B(u, t) woke up.
        g = sim(nx.path_graph(6))
        wake = {u: (10 if u == 5 else 0) for u in g.nodes}
        woken = run_with_wakeup(g, flood(2), wake)
        times = termination_times(g, wake, woken.finish_round)
        assert all(t <= 2 for t in times.values()), times

    def test_running_time_bounded_by_algorithm_time(self):
        g = sim(nx.cycle_graph(9))
        for _, pattern in WAKE_PATTERNS:
            wake = pattern(g)
            woken = run_with_wakeup(g, flood(4), wake)
            assert running_time(g, wake, woken.finish_round) <= 4

    def test_negative_wake_rejected(self):
        g = sim(nx.path_graph(3))
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            run_with_wakeup(g, flood(1), {0: -1, 1: 0, 2: 0})


class TestObservation21:
    """Composition A1;A2 runs in at most t1 + t2 rounds."""

    @pytest.mark.parametrize("k1,k2", [(1, 1), (2, 3), (3, 2), (4, 4)])
    def test_chain_time_bound(self, k1, k2):
        g = sim(nx.random_regular_graph(3, 12, seed=4))
        chained = Chain([flood(k1), flood(k2)])
        result = run(g, chained)
        assert result.rounds <= k1 + k2

    def test_chain_outputs_compose(self):
        g = sim(nx.path_graph(10))
        result = run(g, Chain([flood(2), flood(2)]))
        # Stage 2 floods the same values again: radius-2 of radius-2
        # maxima equals radius-4 maxima.
        direct = run(g, flood(4))
        for u in g.nodes:
            assert result.outputs[u][1] == direct.outputs[u]

    def test_three_stage_chain(self):
        g = sim(nx.cycle_graph(11))
        result = run(g, Chain([flood(1), flood(1), flood(1)]))
        assert result.rounds <= 3
        direct = run(g, flood(3))
        for u in g.nodes:
            assert result.outputs[u][2] == direct.outputs[u]

    def test_chain_under_wakeup_patterns(self):
        g = sim(nx.path_graph(7))
        chained = Chain([flood(2), flood(1)])
        wake = {u: u % 3 for u in g.nodes}
        woken = run_with_wakeup(g, chained, wake)
        sync = run(g, chained)
        assert woken.outputs == sync.outputs

    def test_chain_requires_union(self):
        a = LocalAlgorithm("a", lambda ctx: MaxFlood(ctx, 1), requires=("n",))
        b = LocalAlgorithm("b", lambda ctx: MaxFlood(ctx, 1), requires=("m",))
        chained = Chain([a, b])
        assert set(chained.requires) == {"n", "m"}

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            Chain([])
