"""Virtual-node layer: derived graphs must behave as if run directly."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.algorithms.fast_mis import fast_mis
from repro.algorithms.luby import luby_mis
from repro.core.domain import VirtualDomain
from repro.graphs import clique_product_spec, line_graph_spec
from repro.graphs.transforms import line_graph_max_degree
from repro.local import SimGraph, flatten_outputs, run, virtualize
from repro.problems import MIS


def sim(graph):
    return SimGraph.from_networkx(graph)


def explicit_simgraph(spec):
    """The derived graph materialized directly (test oracle)."""
    g = nx.Graph()
    g.add_nodes_from(spec.virtual_nodes)
    for v, neighbours in spec.adj.items():
        for w in neighbours:
            g.add_edge(v, w)
    return SimGraph.from_networkx(g, idents=spec.ident)


GRAPHS = [
    nx.path_graph(6),
    nx.cycle_graph(7),
    nx.star_graph(5),
    nx.random_regular_graph(3, 10, seed=1),
    nx.gnp_random_graph(14, 0.25, seed=2),
]


class TestLineGraphSpec:
    @pytest.mark.parametrize("graph", GRAPHS)
    def test_structure_matches_networkx_line_graph(self, graph):
        g = sim(graph)
        spec = line_graph_spec(g)
        ours = explicit_simgraph(spec).to_networkx()
        reference = nx.line_graph(graph)
        relabel = {(u, v) if u < v else (v, u) for u, v in reference.nodes()}
        assert {frozenset(e) for e in ours.nodes()} == {
            frozenset(e) for e in relabel
        }
        assert ours.number_of_edges() == reference.number_of_edges()

    @pytest.mark.parametrize("graph", GRAPHS)
    def test_max_degree_formula(self, graph):
        g = sim(graph)
        spec = line_graph_spec(g)
        explicit = explicit_simgraph(spec)
        assert explicit.max_degree == line_graph_max_degree(g)

    def test_dilation_two_on_paths(self):
        g = sim(nx.path_graph(5))
        spec = line_graph_spec(g)
        assert spec.dilation in (1, 2)


class TestCliqueProductSpec:
    @pytest.mark.parametrize("graph", GRAPHS)
    def test_clique_sizes(self, graph):
        g = sim(graph)
        spec = clique_product_spec(g)
        for u in g.nodes:
            members = [v for v in spec.virtual_nodes if v[0] == u]
            assert len(members) == g.degree(u) + 1

    def test_dilation_one(self):
        g = sim(nx.cycle_graph(6))
        spec = clique_product_spec(g)
        assert spec.dilation == 1

    def test_cross_edges_respect_min_degree(self):
        g = sim(nx.star_graph(3))
        spec = clique_product_spec(g)
        hub, leaf = 0, 1
        # leaf has degree 1: only index 0..1 exist; cross edges limited
        # to i < 1 + min(deg) = 2.
        assert (leaf, 1) in spec.adj[(hub, 1)]
        assert all((hub, i) not in spec.adj.get((leaf, 2), ()) for i in range(4))


class TestSimulationEquivalence:
    """The virtualized run must equal the direct run on the derived graph."""

    @pytest.mark.parametrize("graph", GRAPHS)
    def test_line_graph_mis_equivalence(self, graph):
        g = sim(graph)
        spec = line_graph_spec(g)
        explicit = explicit_simgraph(spec)
        guesses = {
            "Delta": max(1, explicit.max_degree),
            "m": explicit.max_ident,
        }
        direct = run(explicit, fast_mis(), guesses=guesses, seed=3)
        wrapped = virtualize(spec, fast_mis())
        hosted = run(g, wrapped, guesses=guesses, seed=3)
        merged = flatten_outputs(spec, hosted.outputs)
        assert merged == direct.outputs
        assert hosted.rounds <= spec.dilation * direct.rounds + 6

    @pytest.mark.parametrize("graph", GRAPHS)
    def test_clique_product_luby_valid_mis(self, graph):
        g = sim(graph)
        spec = clique_product_spec(g)
        explicit = explicit_simgraph(spec)
        wrapped = virtualize(spec, luby_mis())
        hosted = run(g, wrapped, seed=4)
        merged = flatten_outputs(spec, hosted.outputs)
        assert MIS.is_solution(explicit, {}, merged)

    def test_virtual_domain_run_restricted_defaults(self):
        g = sim(nx.cycle_graph(8))
        spec = line_graph_spec(g)
        domain = VirtualDomain(g, spec)
        outputs, charged = domain.run_restricted(
            fast_mis(),
            1,  # far too few virtual rounds
            guesses={"Delta": 4, "m": 10**6},
            default_output="cut",
        )
        assert charged >= 1
        assert "cut" in set(outputs.values())

    def test_virtual_domain_subgraph(self):
        g = sim(nx.cycle_graph(8))
        spec = line_graph_spec(g)
        domain = VirtualDomain(g, spec)
        keep = list(spec.virtual_nodes)[:4]
        sub = domain.subgraph(keep)
        assert sub.n == 4
        for v in keep:
            assert set(sub.neighbors(v)) <= set(keep)
