"""Theorem 5: the uniform coloring transformer."""

from __future__ import annotations

import pytest

from repro.algorithms.lambda_coloring import (
    lambda_coloring_nonuniform,
    lambda_colors_bound,
    linial_scheme,
)
from repro.core import g_quadratic, theorem5
from repro.core.coloring_transformer import slc_wrap
from repro.errors import ParameterError
from repro.problems import PROPER_COLORING, ColorList, SLCInput


def build_uniform_linial():
    algorithm, bound, g = linial_scheme()
    return theorem5(algorithm, bound, g)


class TestTheorem5Linial:
    def test_proper_on_catalog(self, catalog):
        uc = build_uniform_linial()
        for name, graph in catalog.items():
            result = uc.run(graph, seed=1)
            assert PROPER_COLORING.is_solution(graph, {}, result.outputs), (
                name,
                PROPER_COLORING.violations(graph, {}, result.outputs)[:3],
            )

    def test_color_count_within_2g(self, catalog):
        algorithm, bound, g = linial_scheme()
        uc = theorem5(algorithm, bound, g)
        for name, graph in catalog.items():
            if graph.n == 0:
                continue
            result = uc.run(graph, seed=2)
            delta = max(1, graph.max_degree)
            # layers stop at the first boundary past Δ; colors live in
            # [g(D)+1, 2g(D)] with g(D) ≤ g(α·Δ) = O(g(Δ)).
            cap = 2 * g(g.invert_doubling(2 * g(delta)))
            assert max(result.outputs.values()) <= cap, (name, cap)

    def test_uniform(self):
        uc = build_uniform_linial()
        assert uc.requires == ()

    def test_empty_graph(self):
        import networkx as nx

        from repro.local import SimGraph

        uc = build_uniform_linial()
        result = uc.run(SimGraph.from_networkx(nx.empty_graph(0)))
        assert result.outputs == {}
        assert result.rounds == 0

    def test_layer_reports(self, catalog):
        uc = build_uniform_linial()
        result = uc.run(catalog["dumbbell"], seed=3)
        assert result.layers
        total = sum(layer.nodes for layer in result.layers)
        assert total == catalog["dumbbell"].n


class TestTheorem5Lambda:
    @pytest.mark.parametrize("lam", [1, 2, 4])
    def test_lambda_rows(self, small_gnp, lam):
        nu = lambda_coloring_nonuniform(lam)
        uc = theorem5(nu.algorithm, nu.bound, lambda_colors_bound(lam))
        result = uc.run(small_gnp, seed=4)
        assert PROPER_COLORING.is_solution(small_gnp, {}, result.outputs)

    def test_more_colors_for_smaller_lambda_cap(self, medium_gnp):
        nu1 = lambda_coloring_nonuniform(1)
        uc1 = theorem5(nu1.algorithm, nu1.bound, lambda_colors_bound(1))
        result = uc1.run(medium_gnp, seed=5)
        g = lambda_colors_bound(1)
        delta = medium_gnp.max_degree
        cap = 2 * g(g.invert_doubling(2 * g(max(1, delta))))
        assert max(result.outputs.values()) <= cap


class TestSLCWrapper:
    def test_requires_drops_delta(self):
        algorithm, _, _ = linial_scheme()
        wrapped = slc_wrap(algorithm)
        assert "Delta" not in wrapped.requires
        assert "m" in wrapped.requires

    def test_wrapper_needs_slc_input(self, path12):
        from repro.local import run

        algorithm, _, _ = linial_scheme()
        wrapped = slc_wrap(algorithm)
        with pytest.raises(ParameterError):
            run(path12, wrapped, guesses={"m": 100})

    def test_wrapper_outputs_pairs_in_list(self, path12):
        from repro.local import run

        algorithm, _, g = linial_scheme()
        wrapped = slc_wrap(algorithm)
        delta_hat = 4
        inputs = {
            u: SLCInput(delta_hat, ColorList(g(delta_hat), delta_hat + 1))
            for u in path12.nodes
        }
        result = run(
            path12, wrapped, inputs=inputs, guesses={"m": path12.max_ident}
        )
        for u, pair in result.outputs.items():
            assert pair in inputs[u].colors

    def test_rejects_gamma_beyond_m_delta(self):
        from repro.core.bounds import AdditiveBound, linear
        from repro.local import LocalAlgorithm, NodeProcess

        class Dummy(NodeProcess):
            def start(self):
                self.finish(1)

        algo = LocalAlgorithm("dummy", Dummy, requires=("n",))
        with pytest.raises(ParameterError):
            theorem5(algo, AdditiveBound([linear("n")]), g_quadratic())
