"""Function classes of Section 2 and the Theorem 5 growth machinery."""

from __future__ import annotations

import math

import pytest

from repro.core.functions import (
    DEFAULT_DOMAIN,
    GrowthFunction,
    certify_moderately_fast,
    certify_moderately_increasing,
    certify_moderately_slow,
    certify_non_decreasing,
    g_linear,
    g_power,
    g_quadratic,
)
from repro.errors import ParameterError


class TestCertifiers:
    def test_log_is_moderately_slow_not_increasing(self):
        fn = lambda x: math.log2(x + 1) + 1
        assert certify_moderately_slow(fn, alpha=2, domain=DEFAULT_DOMAIN)
        assert not certify_moderately_increasing(
            fn, alpha=4, domain=DEFAULT_DOMAIN
        )

    def test_constant_is_moderately_slow(self):
        fn = lambda x: 7
        assert certify_moderately_slow(fn, alpha=1, domain=DEFAULT_DOMAIN)

    def test_polynomial_is_moderately_increasing(self):
        # the paper: x^k1 log^k2 x is moderately-increasing for k1 ≥ 1
        fn = lambda x: x * (math.log2(x + 1) + 1)
        assert certify_moderately_increasing(
            fn, alpha=4, domain=DEFAULT_DOMAIN
        )

    def test_exponential_not_moderately_slow(self):
        fn = lambda x: 2.0**x
        assert not certify_moderately_slow(fn, alpha=64, domain=range(2, 40))

    def test_decreasing_rejected(self):
        fn = lambda x: -x
        assert not certify_non_decreasing(fn, DEFAULT_DOMAIN)

    def test_moderately_fast_needs_x_below_fx(self):
        fn = lambda x: x  # not strictly above x
        assert not certify_moderately_fast(fn, alpha=2, domain=range(1, 30))


class TestGrowthFunction:
    def test_linear_growth_validates(self):
        g = g_linear(3)
        assert g(4) == 15

    def test_lambda_one_rejected(self):
        with pytest.raises(ParameterError):
            g_linear(1)

    def test_quadratic(self):
        g = g_quadratic()
        assert g(3) == 16

    def test_power(self):
        g = g_power(1.5)
        assert g(8) > 8

    def test_invert_doubling(self):
        g = g_quadratic()
        target = 2 * g(5)
        boundary = g.invert_doubling(target)
        assert g(boundary) >= target
        assert g(boundary - 1) < target

    def test_layer_boundaries_cover_degrees(self):
        g = g_quadratic()
        boundaries = g.layer_boundaries(100)
        assert boundaries[0] == 1
        assert boundaries[-1] > 100
        # doubling property: g(D_{i+1}) ≥ 2 g(D_i)
        for a, b in zip(boundaries, boundaries[1:]):
            assert g(b) >= 2 * g(a)

    def test_layer_of_consistent_with_boundaries(self):
        g = g_quadratic()
        boundaries = g.layer_boundaries(64)
        for degree in (0, 1, 2, 5, 17, 63, 64):
            layer = g.layer_of(degree)
            low = boundaries[layer - 1]
            high = boundaries[layer]
            assert low <= max(1, degree) < high

    def test_layers_give_disjoint_color_ranges(self):
        """[g(D_{i+1})+1, 2g(D_{i+1})] are pairwise disjoint (Thm 5)."""
        g = g_quadratic()
        boundaries = g.layer_boundaries(200)
        ranges = [
            (g(b) + 1, 2 * g(b)) for b in boundaries[1:]
        ]
        for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
            assert hi1 < lo2

    def test_bad_growth_rejected(self):
        with pytest.raises(ParameterError):
            GrowthFunction(lambda x: x, alpha=2, name="identity")
