"""Deterministic fault injection + resilient shard execution (D14).

Contract under test: an injected run is a pure function of
``(graph, algorithm, seed, plan)`` and bit-identical across every
backend — the reference loop, the compiled per-node loop, the batched
kernels (per-round fault masks) and the sharded engine on every shard
count and channel.  Plus the resilience ladder: workers that are
SIGKILLed or hang mid-round surface as retryable transport failures,
are retried once and then degraded to the workerless inline channel.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.algorithms.fast_mis import fast_mis
from repro.algorithms.hash_luby import hash_luby_mis
from repro.algorithms.luby import luby_mc, luby_mis
from repro.errors import (
    FaultError,
    NonTerminationError,
    WorkerDiedError,
    WorkerTimeoutError,
)
from repro.local import (
    GARBLED,
    Broadcast,
    FaultPlan,
    LocalAlgorithm,
    NodeProcess,
    byzantine_silent,
    crash_at,
    drop,
    garble,
    honest,
    last_faults,
    run,
    sample_plan,
    use_batch,
    use_faults,
)
from repro.local import sharded
from repro.local.batch import numpy_or_none
from repro.local.runner import last_stepping
from repro.local.sharded import fork_available

RESULT_FIELDS = ("outputs", "finish_round", "rounds", "messages", "truncated")

#: The parent (test-session) pid; forked shard workers differ.
PARENT_PID = os.getpid()


def assert_results_equal(a, b, context=""):
    for field in RESULT_FIELDS:
        assert getattr(a, field) == getattr(b, field), (field, context)


def mixed_plan(graph):
    """One of each profile over the graph's first labels."""
    nodes = sorted(graph.nodes)
    return FaultPlan({
        nodes[1]: crash_at(2),
        nodes[4]: crash_at(0, output="dead"),
        nodes[7]: byzantine_silent(),
        nodes[10]: drop(0.5),
        nodes[13]: garble(0.6),
        nodes[16]: drop(1.0),
        nodes[19]: honest(),
    })


class TestBitIdentity:
    def test_full_backend_matrix_luby(self, small_gnp):
        plan = mixed_plan(small_gnp)
        base = run(small_gnp, luby_mis(), seed=5, rng="counter",
                   backend="reference", faults=plan)
        compiled = run(small_gnp, luby_mis(), seed=5, rng="counter",
                       backend="compiled", faults=plan)
        assert_results_equal(base, compiled, context="compiled")
        channels = ("inline", "mp", "mp-pooled") if fork_available() else (
            "inline",)
        for k in (1, 2, 3):
            for channel in channels:
                for batching in (True, False):
                    with use_batch(batching):
                        got = run(
                            small_gnp, luby_mis(), seed=5, rng="counter",
                            backend="sharded", shards=k,
                            shard_channel=channel, faults=plan,
                        )
                    assert_results_equal(
                        base, got, context=(k, channel, batching)
                    )

    @pytest.mark.parametrize("make", (luby_mc, hash_luby_mis))
    def test_certified_kernels_bit_identical(self, small_gnp, make):
        plan = mixed_plan(small_gnp)
        algorithm = make()
        guesses = {"n": len(small_gnp.nodes)}
        base = run(small_gnp, algorithm, seed=3, rng="counter",
                   guesses=guesses, backend="reference", faults=plan)
        batched = run(small_gnp, algorithm, seed=3, rng="counter",
                      guesses=guesses, backend="batch", faults=plan)
        assert last_stepping() == "batch"  # kernel certified for faults
        assert_results_equal(base, batched, context="batch")
        algorithm = make()
        shard = run(small_gnp, algorithm, seed=3, rng="counter",
                    guesses=guesses, backend="sharded", shards=2,
                    faults=plan)
        assert_results_equal(base, shard, context="sharded")

    @pytest.mark.skipif(numpy_or_none() is None, reason="needs numpy")
    def test_scalar_and_vector_views_agree(self, small_gnp):
        """CompiledFaults.decide ≡ the BatchFaults per-slot masks."""
        from repro.local.batch import batch_graph_of
        from repro.local.faults import DELIVER, DROP as F_DROP

        plan = mixed_plan(small_gnp)
        compiled = plan.compile(small_gnp.nodes, small_gnp.ident, 5, 0)
        cg = small_gnp.compiled()
        bg = batch_graph_of(cg)
        view = compiled.batch_view(bg)
        for rnd in range(6):
            delivered = view.delivered_out(rnd)
            tainted = view.tainted_in(rnd)
            for slot in range(len(bg.owner)):
                o, nb = int(bg.owner[slot]), int(bg.neigh[slot])
                out_fate = compiled.decide(
                    bg.labels[o], bg.idents[o], bg.idents[nb], rnd
                )
                silenced_o = compiled.silenced(bg.labels[o], rnd)
                assert delivered[slot] == (
                    out_fate != F_DROP and not silenced_o
                ), (slot, rnd, "out")
                in_fate = compiled.decide(
                    bg.labels[nb], bg.idents[nb], bg.idents[o], rnd
                )
                silenced_n = compiled.silenced(bg.labels[nb], rnd)
                assert tainted[slot] == (
                    in_fate != DELIVER or silenced_n
                ), (slot, rnd, "in")

    def test_injected_run_is_reproducible(self, small_gnp):
        plan = mixed_plan(small_gnp)
        first = run(small_gnp, luby_mis(), seed=9, rng="counter", faults=plan)
        again = run(small_gnp, luby_mis(), seed=9, rng="counter", faults=plan)
        assert_results_equal(first, again)


class _Echo(NodeProcess):
    """Round-1 inbox recorder: output is the multiset of payloads."""

    __slots__ = ()

    def start(self):
        if self.ctx.degree == 0:
            self.finish(())
            return None
        return Broadcast(("msg", self.ctx.ident))

    def receive(self, inbox):
        self.finish(tuple(sorted(inbox.values(), key=repr)))
        return None


def _echo_algorithm():
    return LocalAlgorithm(name="echo", process=_Echo)


class TestFaultSemantics:
    def test_crash_output_and_round(self, small_gnp):
        nodes = sorted(small_gnp.nodes)
        plan = FaultPlan({
            nodes[0]: crash_at(0, output="dead-0"),
            nodes[2]: crash_at(1, output="dead-1"),
        })
        for backend in ("reference", "compiled"):
            got = run(small_gnp, luby_mis(), seed=2, rng="counter",
                      backend=backend, faults=plan)
            assert got.outputs[nodes[0]] == "dead-0"
            assert got.finish_round[nodes[0]] == 0
            assert got.outputs[nodes[2]] == "dead-1"
            assert got.finish_round[nodes[2]] == 1

    def test_garbled_arrives_as_sentinel(self, small_gnp):
        victim = max(small_gnp.nodes, key=small_gnp.degree)
        plan = FaultPlan({victim: garble(1.0)})
        got = run(small_gnp, _echo_algorithm(), seed=1, faults=plan)
        neighbour = small_gnp.adj[victim][0][1]
        assert GARBLED in got.outputs[neighbour]
        # Tag-checked protocols must survive the sentinel: it is a
        # tuple whose first element matches no protocol tag.
        assert GARBLED[0] not in ("msg", "bid", "win")

    def test_message_accounting(self, small_gnp):
        victim = max(small_gnp.nodes, key=small_gnp.degree)
        honest_run = run(small_gnp, _echo_algorithm(), seed=1)
        dropped = run(small_gnp, _echo_algorithm(), seed=1,
                      faults=FaultPlan({victim: drop(1.0)}))
        garbled = run(small_gnp, _echo_algorithm(), seed=1,
                      faults=FaultPlan({victim: garble(1.0)}))
        silent = run(small_gnp, _echo_algorithm(), seed=1,
                     faults=FaultPlan({victim: byzantine_silent()}))
        degree = small_gnp.degree(victim)
        # Dropped and silenced sends are uncounted; garbled ones travel.
        assert dropped.messages == honest_run.messages - degree
        assert silent.messages == honest_run.messages - degree
        assert garbled.messages == honest_run.messages

    def test_uncertified_kernel_falls_back_per_node(self, small_gnp):
        guesses = {"m": small_gnp.max_ident, "Delta": small_gnp.max_degree}
        plan = mixed_plan(small_gnp)
        run(small_gnp, fast_mis(), seed=4, rng="counter", guesses=guesses)
        assert last_stepping() == "rf"  # honest runs keep the fused kernel
        base = run(small_gnp, fast_mis(), seed=4, rng="counter",
                   guesses=guesses, backend="reference", faults=plan)
        compiled = run(small_gnp, fast_mis(), seed=4, rng="counter",
                       guesses=guesses, faults=plan)
        assert last_stepping() == "per-node"
        assert_results_equal(base, compiled, context="fallback")
        shard = run(small_gnp, fast_mis(), seed=4, rng="counter",
                    guesses=guesses, shards=2, faults=plan)
        assert last_stepping() == "shard-per-node"
        assert_results_equal(base, shard, context="shard fallback")

    def test_ambient_plan_and_diagnostics(self, small_gnp):
        plan = mixed_plan(small_gnp)
        explicit = run(small_gnp, luby_mis(), seed=6, rng="counter",
                       faults=plan)
        assert last_faults() is not None and "crash" in last_faults()
        with use_faults(plan):
            ambient = run(small_gnp, luby_mis(), seed=6, rng="counter")
        assert_results_equal(explicit, ambient, context="ambient")
        honest_again = run(small_gnp, luby_mis(), seed=6, rng="counter")
        assert last_faults() is None
        baseline = run(small_gnp, luby_mis(), seed=6, rng="counter")
        assert_results_equal(honest_again, baseline)

    def test_absent_and_empty_plans_inject_nothing(self, small_gnp):
        baseline = run(small_gnp, luby_mis(), seed=8, rng="counter")
        empty = run(small_gnp, luby_mis(), seed=8, rng="counter",
                    faults=FaultPlan({}))
        assert_results_equal(baseline, empty, context="empty")
        absent = run(small_gnp, luby_mis(), seed=8, rng="counter",
                     faults=FaultPlan({"no-such-node": crash_at(0)}))
        assert_results_equal(baseline, absent, context="absent")
        assert last_faults() is None

    def test_sample_plan_is_deterministic(self, small_gnp):
        first = sample_plan(small_gnp, drop(0.5), 0.3, seed=7)
        again = sample_plan(small_gnp, drop(0.5), 0.3, seed=7)
        assert sorted(first.profiles) == sorted(again.profiles)
        assert 0 < len(first) < len(small_gnp.nodes)
        other = sample_plan(small_gnp, drop(0.5), 0.3, seed=8)
        assert sorted(first.profiles) != sorted(other.profiles)
        assert len(sample_plan(small_gnp, drop(0.5), 0.0, seed=7)) == 0


# ---------------------------------------------------------------------------
# resilience: worker death, hangs, and the retry/degrade ladder
# ---------------------------------------------------------------------------

class _KilledWorker(NodeProcess):
    """Node 0 hard-kills its hosting process — in forked workers only."""

    __slots__ = ("r",)

    def __init__(self, ctx):
        super().__init__(ctx)
        self.r = 0

    def start(self):
        return Broadcast(("hi", 0))

    def receive(self, inbox):
        self.r += 1
        if self.r == 2 and os.getpid() != PARENT_PID and self.ctx.node == 0:
            os._exit(9)
        if self.r >= 4:
            self.finish(self.r)
            return None
        return Broadcast(("hi", self.r))


class _HungWorker(_KilledWorker):
    """Node 0 hangs mid-round — in forked workers only."""

    __slots__ = ()

    def receive(self, inbox):
        self.r += 1
        if self.r == 2 and os.getpid() != PARENT_PID and self.ctx.node == 0:
            time.sleep(60)
        if self.r >= 4:
            self.finish(self.r)
            return None
        return Broadcast(("hi", self.r))


@pytest.mark.skipif(
    not fork_available(), reason="multiprocessing fork unavailable"
)
class TestResilienceLadder:
    @pytest.fixture(autouse=True)
    def fast_ladder(self, monkeypatch):
        monkeypatch.setattr(sharded, "SHARD_RETRY_BACKOFF", 0.01)

    @pytest.mark.parametrize("channel", ("mp", "mp-pooled"))
    def test_sigkilled_worker_degrades_and_completes(
        self, small_gnp, channel
    ):
        """Regression: a SIGKILLed worker used to block the parent's
        recv forever; now it degrades to inline and completes."""
        algo = LocalAlgorithm(name="killed", process=_KilledWorker)
        base = run(small_gnp, algo, seed=1, backend="reference")
        got = run(small_gnp, algo, seed=1, backend="sharded", shards=2,
                  shard_channel=channel)
        assert_results_equal(base, got, context=channel)

    @pytest.mark.parametrize("channel", ("mp", "mp-pooled"))
    def test_hung_worker_times_out_and_completes(
        self, small_gnp, channel, monkeypatch
    ):
        monkeypatch.setattr(sharded, "SHARD_TIMEOUT", 0.5)
        algo = LocalAlgorithm(name="hung", process=_HungWorker)
        base = run(small_gnp, algo, seed=1, backend="reference")
        started = time.monotonic()
        got = run(small_gnp, algo, seed=1, backend="sharded", shards=2,
                  shard_channel=channel)
        assert time.monotonic() - started < 30
        assert_results_equal(base, got, context=channel)

    def test_recv_timeout_raises_with_shard_and_round(self, monkeypatch):
        import multiprocessing

        monkeypatch.setattr(sharded, "SHARD_TIMEOUT", 0.1)
        parent, child = multiprocessing.Pipe()
        closed = []
        with pytest.raises(WorkerTimeoutError) as excinfo:
            sharded._recv_reports(
                [parent], lambda: closed.append(True), round_no=3
            )
        child.close()
        parent.close()
        exc = excinfo.value
        assert closed == [True]  # on_failure ran before the raise
        assert exc.retryable and isinstance(exc, FaultError)
        assert exc.shard == 0 and exc.round_no == 3
        assert "worker 0" in str(exc) and "round 3" in str(exc)

    def test_recv_eof_raises_worker_died(self, monkeypatch):
        import multiprocessing

        monkeypatch.setattr(sharded, "SHARD_TIMEOUT", 5.0)
        parent, child = multiprocessing.Pipe()
        child.close()  # worker gone: recv sees EOF immediately
        with pytest.raises(WorkerDiedError) as excinfo:
            sharded._recv_reports([parent], lambda: None, round_no=2)
        parent.close()
        assert excinfo.value.retryable
        assert "died without reporting" in str(excinfo.value)

    def test_real_worker_exceptions_do_not_retry(self, small_gnp):
        class _Boom(NodeProcess):
            __slots__ = ()

            def start(self):
                return Broadcast(("hi",))

            def receive(self, inbox):
                raise ValueError("algorithm bug")

        algo = LocalAlgorithm(name="boom", process=_Boom)
        with pytest.raises(ValueError, match="algorithm bug"):
            run(small_gnp, algo, seed=1, backend="sharded", shards=2,
                shard_channel="mp")


class TestNonTerminationDiagnostics:
    def test_per_shard_unfinished_counts(self, small_gnp):
        for batching in (True, False):
            with use_batch(batching):
                with pytest.raises(NonTerminationError) as excinfo:
                    run(small_gnp, luby_mis(), seed=2, rng="counter",
                        max_rounds=1, shards=3)
            message = str(excinfo.value)
            assert "(shard 0:" in message, batching
            counts = excinfo.value.shard_counts
            assert sum(counts.values()) == len(excinfo.value.unfinished)

    def test_unsharded_message_unchanged(self, small_gnp):
        with pytest.raises(NonTerminationError) as excinfo:
            run(small_gnp, luby_mis(), seed=2, rng="counter", max_rounds=1)
        assert "shard" not in str(excinfo.value)
