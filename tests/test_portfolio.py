"""Theorem 4: the fastest-of-k portfolio."""

from __future__ import annotations

import pytest

from repro.algorithms.fast_mis import fast_mis_nonuniform
from repro.algorithms.hash_luby import hash_luby_nonuniform
from repro.algorithms.luby import luby_mis
from repro.algorithms.registry import corollary1_portfolio
from repro.core import LocalMember, mis_pruning, theorem1, theorem4
from repro.problems import MIS


class TestPortfolioBasics:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            theorem4([], mis_pruning())

    def test_non_uniform_member_rejected(self):
        from repro.algorithms.fast_mis import fast_mis

        with pytest.raises(ValueError):
            LocalMember(fast_mis())

    def test_single_member_correct(self, small_gnp):
        uni = theorem1(hash_luby_nonuniform(), mis_pruning())
        port = theorem4([uni], mis_pruning())
        result = port.run(small_gnp, seed=1)
        assert MIS.is_solution(small_gnp, {}, result.outputs)

    def test_local_member_luby(self, small_gnp):
        port = theorem4([LocalMember(luby_mis())], mis_pruning())
        result = port.run(small_gnp, seed=2)
        assert MIS.is_solution(small_gnp, {}, result.outputs)

    def test_portfolio_uniform(self):
        port = corollary1_portfolio()
        assert port.requires == ()


class TestCorollary1i:
    def test_correct_on_catalog(self, catalog):
        port = corollary1_portfolio()
        for name, graph in catalog.items():
            result = port.run(graph, seed=3)
            assert MIS.is_solution(graph, {}, result.outputs), name

    def test_min_time_property(self, catalog):
        """Portfolio ≤ small-constant × fastest member, per instance."""
        members = [
            theorem1(fast_mis_nonuniform(), mis_pruning()),
            theorem1(hash_luby_nonuniform(), mis_pruning()),
        ]
        port = theorem4(
            [
                theorem1(fast_mis_nonuniform(), mis_pruning()),
                theorem1(hash_luby_nonuniform(), mis_pruning()),
            ],
            mis_pruning(),
        )
        for name in ("star_noise", "regular4_30", "gnp48"):
            graph = catalog[name]
            best = min(m.run(graph, seed=5).rounds for m in members)
            combined = port.run(graph, seed=5).rounds
            # k=2 members, geometric budgets, pruning: ≤ ~8× the best.
            assert combined <= 8 * best + 64, (name, combined, best)

    def test_nonly_member_wins_on_high_degree(self, catalog):
        """On the star the n-only member must carry the portfolio."""
        graph = catalog["star_noise"]
        fast = theorem1(fast_mis_nonuniform(), mis_pruning())
        nonly = theorem1(hash_luby_nonuniform(), mis_pruning())
        assert nonly.run(graph, seed=7).rounds < fast.run(graph, seed=7).rounds

    def test_nested_portfolio(self, small_gnp):
        inner = corollary1_portfolio()
        outer = theorem4([inner], mis_pruning())
        result = outer.run(small_gnp, seed=9)
        assert MIS.is_solution(small_gnp, {}, result.outputs)
