"""Unit tests for the synchronous LOCAL runner and SimGraph."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import (
    InvalidInstanceError,
    NonTerminationError,
    ParameterError,
)
from repro.local import (
    Broadcast,
    LocalAlgorithm,
    NodeProcess,
    SimGraph,
    run,
    run_restricted,
    zero_round_algorithm,
)


class CountDown(NodeProcess):
    """Terminates after ``k`` communication rounds; output = inbox sizes."""

    def __init__(self, ctx, k):
        super().__init__(ctx)
        self.k = k
        self.seen = 0

    def start(self):
        if self.k == 0:
            self.finish(0)
            return None
        return Broadcast("x")

    def receive(self, inbox):
        self.seen += len(inbox)
        if self.ctx.degree and not inbox:
            raise AssertionError("expected messages every round")
        self.k -= 1
        if self.k == 0:
            self.finish(self.seen)
            return None
        return Broadcast("x")


def countdown(k):
    return LocalAlgorithm(f"count{k}", lambda ctx: CountDown(ctx, k))


def sim(graph):
    return SimGraph.from_networkx(graph)


class TestSimGraph:
    def test_ports_sorted_by_ident(self):
        g = sim(nx.star_graph(4))
        assert g.neighbors(0) == (1, 2, 3, 4)
        port, neighbour, reverse = g.adj[1][0]
        assert (port, neighbour) == (0, 0)
        assert g.adj[0][reverse][1] == 1

    def test_rejects_directed(self):
        with pytest.raises(InvalidInstanceError):
            SimGraph.from_networkx(nx.DiGraph([(0, 1)]))

    def test_rejects_self_loop(self):
        g = nx.Graph([(0, 0), (0, 1)])
        with pytest.raises(InvalidInstanceError):
            SimGraph.from_networkx(g)

    def test_rejects_duplicate_idents(self):
        with pytest.raises(InvalidInstanceError):
            SimGraph.from_networkx(nx.path_graph(3), idents={0: 1, 1: 1, 2: 2})

    def test_subgraph_reindexes_ports(self):
        g = sim(nx.cycle_graph(5))
        sub = g.subgraph({0, 1, 2})
        assert sub.n == 3
        assert sub.degree(1) == 2
        assert sub.degree(0) == 1

    def test_subgraph_rejects_unknown(self):
        g = sim(nx.path_graph(3))
        with pytest.raises(InvalidInstanceError):
            g.subgraph({7})

    def test_edge_count_and_edges(self):
        g = sim(nx.complete_graph(5))
        assert g.edge_count() == 10
        assert len(list(g.edges())) == 10

    def test_roundtrip_networkx(self):
        original = nx.random_regular_graph(3, 10, seed=1)
        g = sim(original)
        back = g.to_networkx()
        assert nx.is_isomorphic(original, back)

    def test_max_degree_empty(self):
        g = SimGraph.from_networkx(nx.empty_graph(0))
        assert g.max_degree == 0
        assert g.max_ident == 0


class TestRunner:
    def test_round_counting(self):
        g = sim(nx.path_graph(4))
        result = run(g, countdown(3))
        assert result.rounds == 3
        assert all(r == 3 for r in result.finish_round.values())

    def test_zero_round_algorithm(self):
        g = sim(nx.path_graph(4))
        algo = zero_round_algorithm("ident", lambda ctx: ctx.ident)
        result = run(g, algo)
        assert result.rounds == 0
        assert result.outputs == {u: g.ident[u] for u in g.nodes}

    def test_message_counting(self):
        g = sim(nx.path_graph(3))
        result = run(g, countdown(2))
        # 2 rounds of full broadcast over 2 edges (both directions).
        assert result.messages == 2 * 2 * 2

    def test_messages_received(self):
        g = sim(nx.complete_graph(4))
        result = run(g, countdown(2))
        # each node hears 3 neighbours for 2 rounds
        assert all(v == 6 for v in result.outputs.values())

    def test_restriction_truncates(self):
        g = sim(nx.path_graph(4))
        result = run_restricted(g, countdown(5), 2, default_output="cut")
        assert result.rounds == 2
        assert set(result.outputs.values()) == {"cut"}
        assert result.truncated == frozenset(g.nodes)

    def test_restriction_no_effect_when_faster(self):
        g = sim(nx.path_graph(4))
        result = run_restricted(g, countdown(1), 9, default_output="cut")
        assert result.rounds == 1
        assert not result.truncated

    def test_nontermination_raises(self):
        g = sim(nx.path_graph(3))
        with pytest.raises(NonTerminationError):
            run(g, countdown(10), max_rounds=4)

    def test_missing_guess_raises(self):
        g = sim(nx.path_graph(3))
        needy = LocalAlgorithm(
            "needy", lambda ctx: CountDown(ctx, 1), requires=("n",)
        )
        with pytest.raises(ParameterError):
            run(g, needy)

    def test_determinism(self):
        g = sim(nx.gnp_random_graph(20, 0.2, seed=3))
        a = run(g, countdown(3), seed=5)
        b = run(g, countdown(3), seed=5)
        assert a.outputs == b.outputs
        assert a.messages == b.messages

    def test_targeted_messages_validate_ports(self):
        class BadPort(NodeProcess):
            def start(self):
                return {99: "boom"}

            def receive(self, inbox):
                self.finish(0)
                return None

        g = sim(nx.path_graph(2))
        with pytest.raises(ValueError):
            run(g, LocalAlgorithm("bad", BadPort))

    def test_empty_graph(self):
        g = SimGraph.from_networkx(nx.empty_graph(0))
        result = run(g, countdown(3))
        assert result.rounds == 0
        assert result.outputs == {}

    def test_inputs_reach_context(self):
        g = sim(nx.path_graph(3))
        algo = zero_round_algorithm("echo", lambda ctx: ctx.input)
        result = run(g, algo, inputs={0: "a", 2: "c"})
        assert result.outputs == {0: "a", 1: None, 2: "c"}
