"""Cross-backend equivalence suite (DESIGN.md, backend contract).

Proves the compiled engine and the reference loop are interchangeable:
bit-identical :class:`RunResult` fields under a pinned rng scheme on
every workload family, for truncated and self-terminating runs, for
targeted-message algorithms, with message-size tracking, through whole
alternation pipelines, and on virtual (line-graph) domains.  Also pins
the incremental restriction paths against their rebuild specifications.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms import TABLE1
from repro.algorithms.arboricity import h_partition
from repro.algorithms.fast_coloring import fast_coloring
from repro.algorithms.fast_mis import fast_mis
from repro.algorithms.greedy import greedy_coloring, greedy_matching
from repro.algorithms.hash_luby import hash_luby_mis
from repro.algorithms.luby import luby_mc, luby_mis
from repro.algorithms.ruling_sets import bitwise_ruling_set, sw_ruling_set
from repro.bench import WORKLOADS, build_graph
from repro.core.domain import PhysicalDomain, VirtualDomain
from repro.core.pruning import MatchingPruning, RulingSetPruning, SLCPruning
from repro.errors import NonTerminationError
from repro.graphs import clique_product_spec, line_graph_spec
from repro.local import (
    Broadcast,
    LocalAlgorithm,
    NodeProcess,
    run,
    run_restricted,
    use_backend,
    use_batch,
)
from repro.problems import MIS, ColorList, SLCInput

BACKENDS = ("reference", "compiled")
RNGS = ("mt", "counter")

RESULT_FIELDS = (
    "outputs",
    "finish_round",
    "rounds",
    "messages",
    "truncated",
    "max_message_bits",
)


def assert_results_equal(a, b, context=""):
    for field in RESULT_FIELDS:
        assert getattr(a, field) == getattr(b, field), (field, context)


def run_both(graph, algorithm, rng, **kwargs):
    ref = run(graph, algorithm, backend="reference", rng=rng, **kwargs)
    cmp_ = run(graph, algorithm, backend="compiled", rng=rng, **kwargs)
    return ref, cmp_


class PingPong(NodeProcess):
    """Targeted-message algorithm: exercises the dict delivery path."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.rounds_left = 3
        self.heard = 0

    def start(self):
        if self.ctx.degree == 0:
            self.finish(0)
            return None
        # Message only the even ports, with port-dependent payloads.
        return {p: ("ping", self.ctx.ident, p) for p in range(0, self.ctx.degree, 2)}

    def receive(self, inbox):
        self.heard += len(inbox)
        self.rounds_left -= 1
        if self.rounds_left == 0:
            self.finish(self.heard)
            return None
        return {p: ("ping", self.heard) for p in range(0, self.ctx.degree, 2)}


def ping_pong():
    return LocalAlgorithm("ping-pong", PingPong)


class TestRunEquivalence:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("rng", RNGS)
    def test_luby_all_workloads(self, workload, rng):
        graph = build_graph(WORKLOADS[workload](48, seed=3), seed=4)
        ref, cmp_ = run_both(graph, luby_mis(), rng, seed=11)
        assert_results_equal(ref, cmp_, context=(workload, rng))
        assert MIS.is_solution(graph, {}, cmp_.outputs)

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_seed_sweep(self, small_gnp, seed):
        for rng in RNGS:
            ref, cmp_ = run_both(small_gnp, luby_mis(), rng, seed=seed)
            assert_results_equal(ref, cmp_, context=(seed, rng))

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("rng", RNGS)
    def test_truncated_run(self, workload, rng):
        graph = build_graph(WORKLOADS[workload](48, seed=3), seed=4)
        ref = run_restricted(
            graph, luby_mis(), 2, default_output="cut",
            backend="reference", rng=rng,
        )
        cmp_ = run_restricted(
            graph, luby_mis(), 2, default_output="cut",
            backend="compiled", rng=rng,
        )
        assert_results_equal(ref, cmp_, context=(workload, rng))

    def test_truncation_bites(self, small_gnp):
        ref = run_restricted(
            small_gnp, luby_mis(), 2, default_output="cut",
            backend="reference", rng="counter",
        )
        cmp_ = run_restricted(
            small_gnp, luby_mis(), 2, default_output="cut",
            backend="compiled", rng="counter",
        )
        assert_results_equal(ref, cmp_)
        assert ref.truncated  # the restriction actually bit

    def test_targeted_messages(self, small_gnp):
        ref, cmp_ = run_both(small_gnp, ping_pong(), "counter", seed=5)
        assert_results_equal(ref, cmp_)
        assert cmp_.messages > 0

    def test_track_bits(self, small_gnp):
        ref, cmp_ = run_both(
            small_gnp, luby_mis(), "counter", seed=7, track_bits=True
        )
        assert_results_equal(ref, cmp_)
        assert cmp_.max_message_bits is not None
        assert cmp_.max_message_bits > 0

    def test_empty_graph(self):
        import networkx as nx

        from repro.local import SimGraph

        graph = SimGraph.from_networkx(nx.empty_graph(0))
        ref, cmp_ = run_both(graph, luby_mis(), "counter")
        assert_results_equal(ref, cmp_)

    def test_nontermination_parity(self, path12):
        class Forever(NodeProcess):
            def start(self):
                return Broadcast("x")

            def receive(self, inbox):
                return Broadcast("x")

        algo = LocalAlgorithm("forever", Forever)
        errors = {}
        for backend in BACKENDS:
            with pytest.raises(NonTerminationError) as excinfo:
                run(path12, algo, max_rounds=4, backend=backend)
            errors[backend] = excinfo.value
        assert str(errors["reference"]) == str(errors["compiled"])

    def test_bad_port_parity(self, path12):
        class BadPort(NodeProcess):
            def start(self):
                return {99: "boom"}

            def receive(self, inbox):
                return None

        algo = LocalAlgorithm("bad", BadPort)
        messages = {}
        for backend in BACKENDS:
            with pytest.raises(ValueError) as excinfo:
                run(path12, algo, backend=backend)
            messages[backend] = str(excinfo.value)
        assert messages["reference"] == messages["compiled"]


class TestPipelineEquivalence:
    @pytest.mark.parametrize("row", ("mis-nonly", "luby"))
    def test_uniform_rows(self, small_gnp, row):
        results = {}
        for backend in BACKENDS:
            with use_backend(backend, rng="counter"):
                _, _, uniform = TABLE1[row].build()
                results[backend] = uniform.run(small_gnp, seed=13)
        ref, cmp_ = results["reference"], results["compiled"]
        assert ref.outputs == cmp_.outputs
        assert ref.rounds == cmp_.rounds
        assert len(ref.steps) == len(cmp_.steps)

    def test_matching_row_on_line_graph(self, small_gnp):
        """Virtual-domain (line-graph) alternation, both backends."""
        results = {}
        for backend in BACKENDS:
            with use_backend(backend, rng="counter"):
                _, _, uniform = TABLE1["matching"].build()
                results[backend] = uniform.run(small_gnp, seed=17)
        ref, cmp_ = results["reference"], results["compiled"]
        assert ref.outputs == cmp_.outputs
        assert ref.rounds == cmp_.rounds


class TestVirtualDomainEquivalence:
    @pytest.mark.parametrize("rng", RNGS)
    def test_line_graph_restricted_run(self, small_gnp, rng):
        spec = line_graph_spec(small_gnp)
        outputs = {}
        for backend in BACKENDS:
            domain = VirtualDomain(small_gnp, spec)
            outputs[backend] = domain.run_restricted(
                luby_mis(), 24, seed=19, backend=backend, rng=rng
            )
        assert outputs["reference"] == outputs["compiled"]

    def test_clique_product_full_run(self, small_gnp):
        spec = clique_product_spec(small_gnp)
        outputs = {}
        for backend in BACKENDS:
            domain = VirtualDomain(small_gnp, spec)
            outputs[backend] = domain.run_full(
                luby_mis(), seed=23, backend=backend, rng="counter"
            )
        assert outputs["reference"] == outputs["compiled"]


def run_batch_both(graph, algorithm, rng, **kwargs):
    """One per-node compiled run, one batched run of the same config."""
    with use_batch(False):
        pernode = run(graph, algorithm, backend="compiled", rng=rng, **kwargs)
    batched = run(graph, algorithm, backend="batch", rng=rng, **kwargs)
    return pernode, batched


def kernel_algorithms(graph):
    """Every algorithm with a batch kernel, with good and garbage guesses."""
    good = {"m": graph.max_ident, "Delta": graph.max_degree}
    bad = {"m": 12, "Delta": 3}
    return [
        ("luby-mis", luby_mis(), None),
        ("luby-mc", luby_mc(), {"n": graph.n}),
        ("hash-luby", hash_luby_mis(), {"n": graph.n}),
        ("fast-coloring", fast_coloring(), good),
        ("fast-mis", fast_mis(), good),
        ("fast-coloring-bad-guess", fast_coloring(), bad),
        ("fast-mis-bad-guess", fast_mis(), bad),
        ("bitwise-ruling", bitwise_ruling_set(), {"m": graph.max_ident}),
        ("bitwise-ruling-bad-guess", bitwise_ruling_set(), {"m": 5}),
        ("sw-ruling-c1", sw_ruling_set(1), {"n": graph.n}),
        ("h-partition", h_partition(), {"a": 2, "n": graph.n}),
        ("h-partition-bad-guess", h_partition(), {"a": 1, "n": 3}),
    ]


class TestBatchEquivalence:
    """Batch-vs-per-node bit identity for every batched kernel (D10)."""

    @pytest.mark.parametrize("workload", ("gnp-sparse", "tree", "star-noise"))
    @pytest.mark.parametrize("rng", RNGS)
    def test_full_runs(self, workload, rng):
        graph = build_graph(WORKLOADS[workload](52, seed=3), seed=4)
        for label, algorithm, guesses in kernel_algorithms(graph):
            pernode, batched = run_batch_both(
                graph, algorithm, rng, seed=11, guesses=guesses
            )
            assert_results_equal(pernode, batched, context=(workload, rng, label))

    @pytest.mark.parametrize("rounds", (1, 2, 7))
    def test_truncated_runs(self, small_gnp, rounds):
        for label, algorithm, guesses in kernel_algorithms(small_gnp):
            with use_batch(False):
                pernode = run_restricted(
                    small_gnp, algorithm, rounds, default_output="cut",
                    guesses=guesses, backend="compiled", rng="counter",
                )
            batched = run_restricted(
                small_gnp, algorithm, rounds, default_output="cut",
                guesses=guesses, backend="batch", rng="counter",
            )
            assert_results_equal(pernode, batched, context=(rounds, label))

    def test_batch_matches_reference(self, small_gnp):
        for label, algorithm, guesses in kernel_algorithms(small_gnp):
            reference = run(
                small_gnp, algorithm, backend="reference", rng="counter",
                seed=5, guesses=guesses,
            )
            batched = run(
                small_gnp, algorithm, backend="batch", rng="counter",
                seed=5, guesses=guesses,
            )
            assert_results_equal(reference, batched, context=label)

    def test_nontermination_parity(self, small_gnp):
        errors = {}
        for batching in (False, True):
            with use_batch(batching):
                with pytest.raises(NonTerminationError) as excinfo:
                    run(small_gnp, luby_mis(), max_rounds=1, rng="counter")
            errors[batching] = str(excinfo.value)
        assert errors[False] == errors[True]

    @pytest.mark.parametrize("rng", RNGS)
    @pytest.mark.parametrize("budget", (2, 8, 40))
    def test_line_graph_domain(self, small_gnp, rng, budget):
        spec = line_graph_spec(small_gnp)
        guesses = {"m": small_gnp.max_ident**2, "Delta": 2 * small_gnp.max_degree}
        for label, algorithm, g in (
            ("luby", luby_mis(), None),
            ("fast-mis", fast_mis(), guesses),
        ):
            outputs = {}
            for batching in (False, True):
                domain = VirtualDomain(small_gnp, spec)
                with use_batch(batching):
                    outputs[batching] = domain.run_restricted(
                        algorithm, budget, seed=19, guesses=g, rng=rng
                    )
            assert outputs[False] == outputs[True], (label, rng, budget)

    def test_clique_product_domain(self, small_gnp):
        spec = clique_product_spec(small_gnp)
        outputs = {}
        for batching in (False, True):
            domain = VirtualDomain(small_gnp, spec)
            with use_batch(batching):
                outputs[batching] = domain.run_restricted(
                    luby_mis(), 30, seed=23, rng="counter"
                )
        assert outputs[False] == outputs[True]

    def test_restricted_spec_domain(self, small_gnp):
        """Batch driver on an incrementally restricted virtual spec."""
        spec = line_graph_spec(small_gnp)
        keep = set(list(spec.virtual_nodes)[::2])
        outputs = {}
        for batching in (False, True):
            domain = VirtualDomain(small_gnp, spec)
            with use_batch(batching):
                sub = domain.subgraph(keep)
                outputs[batching] = sub.run_restricted(
                    luby_mis(), 24, seed=29, rng="counter"
                )
        assert outputs[False] == outputs[True]

    def test_matching_row_pipeline(self, small_gnp):
        """Whole matching alternation: batch vs per-node stepping."""
        results = {}
        for batching in (False, True):
            with use_backend("compiled", rng="counter"):
                with use_batch(batching):
                    _, _, uniform = TABLE1["matching"].build()
                    results[batching] = uniform.run(small_gnp, seed=17)
        assert results[False].outputs == results[True].outputs
        assert results[False].rounds == results[True].rounds
        assert len(results[False].steps) == len(results[True].steps)


def assert_prune_results_equal(a, b, context=""):
    assert a.pruned == b.pruned, ("pruned", context)
    assert a.new_inputs == b.new_inputs, ("new_inputs", context)
    assert a.rounds == b.rounds, ("rounds", context)


def apply_both(pruner, domain_factory, inputs, tentative, seed=3):
    """One per-node pruning application, one batched, same config."""
    with use_batch(False):
        pernode = pruner.apply(
            domain_factory(), inputs, tentative, seed=seed, salt="eq"
        )
    batched = pruner.apply(
        domain_factory(), inputs, tentative, seed=seed, salt="eq"
    )
    return pernode, batched


def slc_instance(graph, rng):
    delta_hat = graph.max_degree
    width = 2 * (delta_hat + 1)
    inputs = {
        u: SLCInput(delta_hat, ColorList(width, delta_hat + 1))
        for u in graph.nodes
    }
    colors = greedy_coloring(graph)
    tentative = {
        u: (colors[u], 1) if rng.random() < 0.5 else 0 for u in graph.nodes
    }
    return inputs, tentative


class TestPrunerBatchEquivalence:
    """Batch-vs-per-node bit identity for the pruner kernels (D11)."""

    @pytest.mark.parametrize("beta", (1, 2, 4))
    @pytest.mark.parametrize("seed", (0, 1))
    def test_ruling_set_pruning(self, small_gnp, beta, seed):
        rng = random.Random(seed)
        tentative = {u: rng.choice([0, 1]) for u in small_gnp.nodes}
        pernode, batched = apply_both(
            RulingSetPruning(beta),
            lambda: PhysicalDomain(small_gnp),
            {},
            tentative,
        )
        assert_prune_results_equal(pernode, batched, (beta, seed))

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_matching_pruning(self, small_gnp, seed):
        rng = random.Random(seed)
        base = greedy_matching(small_gnp)
        tentative = {}
        for u in small_gnp.nodes:
            roll = rng.random()
            if roll < 0.5:
                tentative[u] = base[u]
            elif roll < 0.8:
                tentative[u] = ("U", small_gnp.ident[u])
            else:
                tentative[u] = 0  # truncation default
        pernode, batched = apply_both(
            MatchingPruning(), lambda: PhysicalDomain(small_gnp), {}, tentative
        )
        assert_prune_results_equal(pernode, batched, seed)

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_slc_pruning_rewrites_inputs_identically(self, small_gnp, seed):
        inputs, tentative = slc_instance(small_gnp, random.Random(seed))
        pernode, batched = apply_both(
            SLCPruning(), lambda: PhysicalDomain(small_gnp), inputs, tentative
        )
        assert_prune_results_equal(pernode, batched, seed)
        survivors = set(small_gnp.nodes) - pernode.pruned
        rewritten = [
            u
            for u in survivors
            if pernode.new_inputs[u].colors.removed
        ]
        assert rewritten  # the rewrite actually bit
        for u in rewritten:
            assert (
                batched.new_inputs[u].colors.removed
                == pernode.new_inputs[u].colors.removed
            )

    def test_restricted_domain_survivors(self, medium_gnp):
        """Pruner kernels on an incrementally restricted SimGraph."""
        keep = [u for u in medium_gnp.nodes if medium_gnp.ident[u] % 3]
        sub = PhysicalDomain(medium_gnp).subgraph(keep)
        rng = random.Random(7)
        tentative = {u: rng.choice([0, 1]) for u in sub.nodes}
        pernode, batched = apply_both(
            RulingSetPruning(2), lambda: sub, {}, tentative
        )
        assert_prune_results_equal(pernode, batched)
        inputs, slc_tent = slc_instance(sub.as_simgraph(), random.Random(9))
        pernode, batched = apply_both(
            SLCPruning(), lambda: sub, inputs, slc_tent
        )
        assert_prune_results_equal(pernode, batched)

    def test_virtual_domain_pruning(self, small_gnp):
        """Pruner kernels through the virtual batch driver (line graph)."""
        spec = line_graph_spec(small_gnp)
        rng = random.Random(11)
        mis_bits = {v: rng.choice([0, 1]) for v in spec.virtual_nodes}
        matching = {
            v: ("M",) + tuple(sorted(spec.ident[w] for w in (v,)))
            if mis_bits[v]
            else ("U", spec.ident[v])
            for v in spec.virtual_nodes
        }
        for pruner, tentative in (
            (RulingSetPruning(1), mis_bits),
            (MatchingPruning(), matching),
        ):
            pernode, batched = apply_both(
                pruner, lambda: VirtualDomain(small_gnp, spec), {}, tentative
            )
            assert_prune_results_equal(pernode, batched, pruner.name)

    def test_restricted_spec_survivors(self, small_gnp):
        """Pruner kernels on an incrementally restricted VirtualSpec."""
        spec = line_graph_spec(small_gnp)
        keep = set(list(spec.virtual_nodes)[::2])
        sub = VirtualDomain(small_gnp, spec).subgraph(keep)
        rng = random.Random(13)
        tentative = {v: rng.choice([0, 1]) for v in sub.nodes}
        pernode, batched = apply_both(
            RulingSetPruning(1), lambda: sub, {}, tentative
        )
        assert_prune_results_equal(pernode, batched)

    def test_unhashable_values_fall_back(self, small_gnp):
        """Unencodable ŷ values decline batching but stay correct."""
        tentative = {u: ["unhashable", u] for u in small_gnp.nodes}
        pernode, batched = apply_both(
            MatchingPruning(), lambda: PhysicalDomain(small_gnp), {}, tentative
        )
        assert_prune_results_equal(pernode, batched)

    def test_pruner_runs_as_plain_algorithm(self, small_gnp):
        """The pruner's LocalAlgorithm itself satisfies the D10 contract."""
        rng = random.Random(3)
        pair_inputs = {
            u: (None, rng.choice([0, 1])) for u in small_gnp.nodes
        }
        for pruner in (RulingSetPruning(2), MatchingPruning()):
            algo = pruner.algorithm()
            with use_batch(False):
                pernode = run_restricted(
                    small_gnp, algo, pruner.rounds, default_output=("keep", None),
                    inputs=pair_inputs, backend="compiled", rng="counter",
                )
            batched = run_restricted(
                small_gnp, algo, pruner.rounds, default_output=("keep", None),
                inputs=pair_inputs, backend="batch", rng="counter",
            )
            assert_results_equal(pernode, batched, context=pruner.name)

    def test_alternation_records_backends(self, small_gnp):
        """StepRecords attribute both runs of a step to their backend."""
        with use_backend("compiled", rng="counter"), use_batch(True):
            _, _, uniform = TABLE1["luby"].build()
            result = uniform.run(small_gnp, seed=13)
        assert result.steps
        # Both halves of each B_i = (A_i ; P) step are roundfuse-
        # certified, so the fused driver tags them "rf" (D17) — or
        # "jit" on the with-numba CI leg with the tier requested.
        from repro.local.roundfuse import stepping_tag

        tag = stepping_tag()
        for step in result.steps:
            assert step.backends == (tag, tag)
            assert step.seconds is not None and step.seconds >= 0
        summary = result.backend_summary()
        assert summary == {
            f"{tag}|{tag}": {
                "steps": len(result.steps),
                "seconds": summary[f"{tag}|{tag}"]["seconds"],
            }
        }
        with use_backend("compiled", rng="counter"), use_batch(False):
            _, _, uniform = TABLE1["luby"].build()
            pernode = uniform.run(small_gnp, seed=13)
        assert all(
            step.backends == ("per-node", "per-node") for step in pernode.steps
        )
        assert pernode.outputs == result.outputs
        assert pernode.rounds == result.rounds


SHARD_COUNTS = (1, 2, 3, 7)


class TestShardEquivalence:
    """Sharded-vs-compiled bit identity (DESIGN.md D12).

    ``sharded(k) ≡ batch ≡ compiled ≡ reference`` for every shard
    count: full, restricted and virtual domains, both steppings
    (shard-certified kernels take the halo-exchange batch path,
    everything else the per-node boundary-message path), both channels.
    """

    @pytest.mark.parametrize("k", SHARD_COUNTS)
    @pytest.mark.parametrize("rng", RNGS)
    def test_full_runs(self, small_gnp, k, rng):
        for label, algorithm, guesses in kernel_algorithms(small_gnp):
            base = run(
                small_gnp, algorithm, backend="compiled", rng=rng,
                seed=11, guesses=guesses,
            )
            sharded = run(
                small_gnp, algorithm, rng=rng, seed=11, guesses=guesses,
                shards=k,
            )
            assert_results_equal(base, sharded, context=(k, rng, label))

    @pytest.mark.parametrize("k", SHARD_COUNTS)
    def test_pernode_stepping(self, small_gnp, k):
        """With batching off, sharding distributes the per-node loop."""
        for label, algorithm, guesses in (
            ("ping-pong", ping_pong(), None),  # targeted dict messages
            ("luby", luby_mis(), None),
        ):
            with use_batch(False):
                base = run(
                    small_gnp, algorithm, backend="compiled",
                    rng="counter", seed=5, guesses=guesses,
                )
                sharded = run(
                    small_gnp, algorithm, rng="counter", seed=5,
                    guesses=guesses, shards=k,
                )
            assert_results_equal(base, sharded, context=(k, label))

    @pytest.mark.parametrize("rounds", (1, 2, 7))
    def test_truncated_runs(self, small_gnp, rounds):
        for k in (2, 3):
            base = run_restricted(
                small_gnp, luby_mis(), rounds, default_output="cut",
                backend="compiled", rng="counter",
            )
            sharded = run_restricted(
                small_gnp, luby_mis(), rounds, default_output="cut",
                rng="counter", shards=k,
            )
            assert_results_equal(base, sharded, context=(k, rounds))

    @pytest.mark.parametrize("channel", ("mp", "mp-pooled"))
    @pytest.mark.parametrize("k", SHARD_COUNTS)
    def test_mp_channels(self, small_gnp, k, channel):
        """Both multiprocessing channels match the inline one exactly
        (fork-per-run and the persistent pool, D13), for every k."""
        for algorithm, guesses in (
            (luby_mis(), None),       # shard-certified kernel
            (fast_mis(), {"m": small_gnp.max_ident, "Delta": small_gnp.max_degree}),  # shard-certified since D13
            (bitwise_ruling_set(), {"m": small_gnp.max_ident}),  # per-node fallback
        ):
            base = run(
                small_gnp, algorithm, backend="compiled", rng="counter",
                seed=7, guesses=guesses,
            )
            mp = run(
                small_gnp, algorithm, rng="counter", seed=7,
                guesses=guesses, shards=k, shard_channel=channel,
            )
            assert_results_equal(base, mp, context=(algorithm.name, k, channel))

    def test_graph_smaller_than_shards(self):
        import networkx as nx

        from repro.local import SimGraph

        tiny = SimGraph.from_networkx(nx.path_graph(3))
        base = run(tiny, luby_mis(), seed=3, rng="counter")
        for k in (7, 100):
            sharded = run(tiny, luby_mis(), seed=3, rng="counter", shards=k)
            assert_results_equal(base, sharded, context=k)
        empty = SimGraph.from_networkx(nx.empty_graph(0))
        base = run(empty, luby_mis(), rng="counter")
        assert_results_equal(
            base, run(empty, luby_mis(), rng="counter", shards=4)
        )

    def test_numpy_free_fallback(self, small_gnp, monkeypatch):
        """Without numpy the sharded engine steps per node, identically."""
        from repro.local import batch as batch_module

        base = run(small_gnp, luby_mis(), seed=9, rng="counter")
        monkeypatch.setattr(batch_module, "_np", None)
        for channel in ("inline", "mp"):
            sharded = run(
                small_gnp, luby_mis(), seed=9, rng="counter", shards=3,
                shard_channel=channel,
            )
            assert_results_equal(base, sharded, context=channel)

    def test_track_bits_shards_per_node(self, small_gnp):
        base = run(small_gnp, luby_mis(), seed=7, rng="counter",
                   track_bits=True)
        sharded = run(small_gnp, luby_mis(), seed=7, rng="counter",
                      track_bits=True, shards=3)
        assert_results_equal(base, sharded)
        assert sharded.max_message_bits is not None

    def test_nontermination_parity(self, small_gnp):
        """Same base diagnostic everywhere; sharded adds per-shard counts."""
        with pytest.raises(NonTerminationError) as excinfo:
            run(small_gnp, luby_mis(), max_rounds=1, rng="counter")
        base = str(excinfo.value)
        sharded_msgs = []
        for kwargs in (
            {"shards": 3},
            {"shards": 3, "shard_channel": "mp"},
            {"shards": 3, "shard_channel": "mp-pooled"},
        ):
            with pytest.raises(NonTerminationError) as excinfo:
                run(small_gnp, luby_mis(), max_rounds=1, rng="counter",
                    **kwargs)
            sharded_msgs.append(str(excinfo.value))
        assert len(set(sharded_msgs)) == 1, sharded_msgs
        msg = sharded_msgs[0]
        assert msg.startswith(base)
        assert "(shard 0:" in msg

    @pytest.mark.parametrize("k", SHARD_COUNTS)
    def test_restricted_substrate(self, medium_gnp, k):
        """Sharded runs on an incrementally restricted SimGraph."""
        keep = [u for u in medium_gnp.nodes if medium_gnp.ident[u] % 3]
        sub = medium_gnp.subgraph(keep)
        base = run(sub, luby_mis(), seed=13, rng="counter")
        sharded = run(sub, luby_mis(), seed=13, rng="counter", shards=k)
        assert_results_equal(base, sharded, context=k)

    @pytest.mark.parametrize("k", SHARD_COUNTS)
    def test_virtual_domains(self, small_gnp, k):
        """Sharded virtual-domain runs (kernel replay and host sim)."""
        spec = line_graph_spec(small_gnp)
        for label, algorithm, guesses in (
            ("luby", luby_mis(), None),  # shard-certified: sharded replay
            (
                "fast-mis",  # shard-certified since D13: sharded replay
                fast_mis(),
                {
                    "m": small_gnp.max_ident**2,
                    "Delta": 2 * small_gnp.max_degree,
                },
            ),
            (
                "bitwise",  # uncertified: per-node sharded host sim
                bitwise_ruling_set(),
                {"m": small_gnp.max_ident**2},
            ),
        ):
            domain = VirtualDomain(small_gnp, spec)
            base = domain.run_restricted(
                algorithm, 24, seed=19, guesses=guesses, backend="compiled"
            )
            sharded = domain.run_restricted(
                algorithm, 24, seed=19, guesses=guesses,
                backend="sharded", shards=k,
            )
            assert base == sharded, (k, label)
            if k in (2, 3):
                pooled = domain.run_restricted(
                    algorithm, 24, seed=19, guesses=guesses,
                    backend="sharded", shards=k,
                    shard_channel="mp-pooled",
                )
                assert base == pooled, (k, label, "mp-pooled")

    def test_restricted_spec_substrate(self, small_gnp):
        """Sharded runs on an incrementally restricted VirtualSpec."""
        spec = line_graph_spec(small_gnp)
        keep = set(list(spec.virtual_nodes)[::2])
        for k in (2, 3):
            base = (
                VirtualDomain(small_gnp, spec)
                .subgraph(keep)
                .run_restricted(luby_mis(), 24, seed=29, rng="counter")
            )
            sharded = (
                VirtualDomain(small_gnp, spec)
                .subgraph(keep)
                .run_restricted(
                    luby_mis(), 24, seed=29, rng="counter",
                    backend="sharded", shards=k,
                )
            )
            assert base == sharded, k

    @pytest.mark.parametrize("k", (1, 3))
    def test_alternation_pipeline(self, small_gnp, k):
        """Whole Theorem-2 alternation: guess and pruner runs sharded."""
        with use_backend("compiled", rng="counter"):
            _, _, uniform = TABLE1["luby"].build()
            base = uniform.run(small_gnp, seed=13)
        with use_backend("sharded", rng="counter", shards=k):
            _, _, uniform = TABLE1["luby"].build()
            sharded = uniform.run(small_gnp, seed=13)
        assert base.outputs == sharded.outputs
        assert base.rounds == sharded.rounds
        assert len(base.steps) == len(sharded.steps)
        # Both runs of every step took the halo-exchange batch path.
        assert all(
            step.backends == ("shard-batch", "shard-batch")
            for step in sharded.steps
        )

    def test_shard_capability_records(self, small_gnp):
        from repro.algorithms import capability_table
        from repro.local.algorithm import capabilities_of

        table = capability_table()
        assert table["luby"]["supports_shard"]
        assert table["luby"]["pruning"]["supports_shard"]
        # fast-mis/fast-coloring kernels are shard-certified since D13.
        assert table["mis-fast"]["supports_shard"]
        assert not table["mis-arb-product"]["supports_shard"]  # host orchestration
        caps = capabilities_of(luby_mis())
        assert caps["supports_batch"] and caps["supports_shard"]
        for algo in (fast_mis(), fast_coloring()):
            caps = capabilities_of(algo)
            assert caps["supports_batch"] and caps["supports_shard"]

    def test_reference_backend_rejects_shards(self, small_gnp):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            run(small_gnp, luby_mis(), backend="reference", shards=2)

    def test_partition_plan_geometry(self, medium_gnp):
        """Edge-cut invariants: cover, balance floor, halo symmetry."""
        part = medium_gnp.partition(4)
        assert part.bounds[0] == 0 and part.bounds[-1] == medium_gnp.n
        assert all(
            part.bounds[s] < part.bounds[s + 1] for s in range(part.k)
        )
        cg = medium_gnp.compiled()
        for s in range(part.k):
            lo, hi = part.own_range(s)
            ghosts = set(part.ghosts[s])
            # every out-of-range neighbour of an owned row is a ghost
            for i in range(lo, hi):
                for v in cg.neigh[cg.offsets[i]:cg.offsets[i + 1]]:
                    assert lo <= v < hi or v in ghosts
            # owned rows keep their full degree in the sub-CSR
            offsets, _ = part.sub_csr(s)
            own_lo, own_hi = part.own_local_range(s)
            loc = part.locals_of(s)
            for t in range(own_lo, own_hi):
                assert (
                    offsets[t + 1] - offsets[t] == cg.degrees[loc[t]]
                )
            # ghost rows are empty (message counts partition exactly)
            for t in list(range(own_lo)) + list(range(own_hi, len(loc))):
                assert offsets[t + 1] == offsets[t]


class TestVirtualRunFullBatch:
    """``run_full`` on virtual domains through the batch path (the
    ROADMAP "still per-node" gap): doubling budget to the fixed point,
    bit-identical outputs *and* physical rounds vs the host loop."""

    @pytest.mark.parametrize("rng", RNGS)
    def test_line_graph_full(self, small_gnp, rng):
        spec = line_graph_spec(small_gnp)
        domain = VirtualDomain(small_gnp, spec)
        with use_batch(False):
            pernode = domain.run_full(luby_mis(), seed=23, rng=rng)
        batched = domain.run_full(luby_mis(), seed=23, rng=rng)
        assert pernode == batched

    def test_clique_product_full(self, small_gnp):
        spec = clique_product_spec(small_gnp)
        domain = VirtualDomain(small_gnp, spec)
        with use_batch(False):
            pernode = domain.run_full(luby_mis(), seed=23, rng="counter")
        batched = domain.run_full(luby_mis(), seed=23, rng="counter")
        assert pernode == batched

    def test_matches_reference_stack(self, small_gnp):
        spec = line_graph_spec(small_gnp)
        with use_backend("reference", rng="counter"):
            ref = VirtualDomain(small_gnp, spec).run_full(
                luby_mis(), seed=31
            )
        got = VirtualDomain(small_gnp, spec).run_full(
            luby_mis(), seed=31, rng="counter"
        )
        assert ref == got

    def test_nonuniform_kernel_full(self, small_gnp):
        spec = line_graph_spec(small_gnp)
        domain = VirtualDomain(small_gnp, spec)
        guesses = {
            "m": small_gnp.max_ident**2,
            "Delta": 2 * small_gnp.max_degree,
        }
        with use_batch(False):
            pernode = domain.run_full(fast_mis(), seed=9, guesses=guesses)
        batched = domain.run_full(fast_mis(), seed=9, guesses=guesses)
        assert pernode == batched

    def test_sharded_full(self, small_gnp):
        spec = line_graph_spec(small_gnp)
        domain = VirtualDomain(small_gnp, spec)
        base = domain.run_full(luby_mis(), seed=23, rng="counter")
        sharded = domain.run_full(
            luby_mis(), seed=23, rng="counter", backend="sharded", shards=3
        )
        assert base == sharded

    def test_nontermination_parity(self, small_gnp):
        spec = line_graph_spec(small_gnp)
        domain = VirtualDomain(small_gnp, spec)
        errors = {}
        for batching in (False, True):
            with use_batch(batching):
                with pytest.raises(NonTerminationError) as excinfo:
                    domain.run_full(luby_mis(), seed=23, max_rounds=2)
            errors[batching] = str(excinfo.value)
        assert errors[False] == errors[True]


def spec_signature(spec):
    return (
        spec.host,
        spec.ident,
        spec.adj,
        spec.dilation,
        spec.send_plan,
        spec.forward_plan,
        spec.relay_client_ports,
        spec.routes,
    )


class TestIncrementalRestriction:
    def test_subgraph_matches_rebuild(self, medium_gnp):
        keep = set(list(medium_gnp.nodes)[::3]) | {medium_gnp.nodes[1]}
        inc = medium_gnp.subgraph(keep)
        ref = medium_gnp.subgraph_rebuild(keep)
        assert inc.nodes == ref.nodes
        assert inc.ident == ref.ident
        assert inc.adj == ref.adj

    def test_chained_restriction(self, medium_gnp):
        inc = medium_gnp
        ref = medium_gnp
        for step, stride in enumerate((2, 3, 2)):
            keep = set(list(inc.nodes)[::stride])
            inc = inc.subgraph(keep)
            ref = ref.subgraph_rebuild(keep)
            assert inc.nodes == ref.nodes, step
            assert inc.adj == ref.adj, step

    def test_csr_restrict_attaches_child_view(self, medium_gnp):
        keep = frozenset(list(medium_gnp.nodes)[::2])
        csr = medium_gnp.subgraph(keep)
        assert csr._compiled is not None  # child inherits a ready CSR
        assert csr._compiled.graph is csr
        again = medium_gnp.subgraph(keep)  # parent CSR now cached
        assert again.nodes == csr.nodes
        assert again.adj == csr.adj

    def test_full_keep_returns_self(self, small_gnp):
        assert small_gnp.subgraph(set(small_gnp.nodes)) is small_gnp

    def test_subgraph_rejects_unknown(self, small_gnp):
        from repro.errors import InvalidInstanceError

        with pytest.raises(InvalidInstanceError):
            small_gnp.subgraph({"nope"})

    def test_virtual_spec_restricted_matches_rebuild(self, small_gnp):
        from repro.local.virtual import VirtualSpec

        spec = line_graph_spec(small_gnp)
        keep = set(list(spec.virtual_nodes)[::2])
        inc = spec.restricted(keep)
        adj = {
            v: [w for w in spec.adj[v] if w in keep]
            for v in spec.virtual_nodes
            if v in keep
        }
        rebuilt = VirtualSpec(
            {v: spec.host[v] for v in adj},
            {v: spec.ident[v] for v in adj},
            adj,
            small_gnp,
        )
        assert spec_signature(inc) == spec_signature(rebuilt)

    def test_virtual_chained_restriction(self, small_gnp):
        spec = clique_product_spec(small_gnp)
        domain = VirtualDomain(small_gnp, spec)
        for stride in (2, 3):
            keep = set(list(domain.nodes)[::stride])
            domain = domain.subgraph(keep)
            assert set(domain.nodes) == keep
            # ports renumbered consistently: every neighbour pair symmetric
            for v in domain.nodes:
                for w in domain.neighbors(v):
                    assert v in domain.neighbors(w)

    def test_restricted_run_equivalence(self, small_gnp):
        """Runs on a restricted virtual domain agree across backends."""
        spec = line_graph_spec(small_gnp)
        keep = set(list(spec.virtual_nodes)[::2])
        outputs = {}
        for backend in BACKENDS:
            domain = VirtualDomain(small_gnp, spec)
            with use_backend(backend, rng="counter"):
                sub = domain.subgraph(keep)
                outputs[backend] = sub.run_restricted(luby_mis(), 24, seed=29)
        assert outputs["reference"] == outputs["compiled"]


class TestCounterRNG:
    def test_deterministic_and_independent(self):
        from repro.local import CounterRNG
        from repro.local.context import rng_source

        source = rng_source("counter", 1, "salt")
        a1 = source(101)
        a2 = source(101)
        b = source(102)
        seq1 = [a1.getrandbits(62) for _ in range(8)]
        seq2 = [a2.getrandbits(62) for _ in range(8)]
        seq3 = [b.getrandbits(62) for _ in range(8)]
        assert seq1 == seq2
        assert seq1 != seq3
        rng = CounterRNG(7)
        assert 0.0 <= rng.random() < 1.0
        values = {rng.randrange(10) for _ in range(200)}
        assert values == set(range(10))
        with pytest.raises(ValueError):
            rng.getrandbits(0)

    def test_lazy_materialization(self):
        from repro.local import NodeContext

        calls = []

        def factory(ident):
            calls.append(ident)
            return object()

        ctx = NodeContext(0, 42, 3, None, {}, rng_factory=factory)
        assert not calls
        first = ctx.rng
        assert calls == [42]
        assert ctx.rng is first
        assert calls == [42]
