"""Round-fused phase/fixed-point drivers and the JIT tier (DESIGN.md D17).

Bit-identity of the fused drivers against the per-round batch loop and
the reference stack for every roundfuse-certified kernel — full,
restricted and virtual domains, both rng schemes — plus the exact
fallback ladder (kill-switch, uncertified algorithm, active fault plan,
``track_bits``, cap shorter than the schedule) and the JIT tier's
absence discipline (the default CI leg has no numba: ``backend="jit"``
must resolve and run the pure-numpy fused tier, same bits).
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms import TABLE1, capability_table
from repro.algorithms.arboricity import h_partition
from repro.algorithms.fast_coloring import fast_coloring
from repro.algorithms.fast_mis import fast_mis
from repro.algorithms.hash_luby import hash_luby_mis
from repro.algorithms.luby import luby_mc, luby_mis
from repro.algorithms.ruling_sets import bitwise_ruling_set, sw_ruling_set
from repro.core.alternating import render_trace
from repro.core.domain import PhysicalDomain, VirtualDomain
from repro.core.pruning import MatchingPruning, RulingSetPruning
from repro.errors import NonTerminationError
from repro.graphs import line_graph_spec
from repro.local import (
    FaultPlan,
    crash_at,
    drop,
    run,
    run_restricted,
    use_backend,
    use_batch,
    use_jit,
    use_roundfuse,
)
from repro.local import batch as batch_module
from repro.local import jitkernels, roundfuse
from repro.local.algorithm import capabilities_of
from repro.local.batch import batch_graph_of
from repro.local.runner import (
    batching_requested,
    last_stepping,
    resolve_backend,
)

numpy = pytest.importorskip("numpy")

RNGS = ("counter", "mt")

RESULT_FIELDS = (
    "outputs",
    "finish_round",
    "rounds",
    "messages",
    "truncated",
    "max_message_bits",
)


def assert_results_equal(a, b, context=""):
    for field in RESULT_FIELDS:
        assert getattr(a, field) == getattr(b, field), (field, context)


def fused_tag():
    """The expected fused stepping tag for this environment — "jit" on
    the CI with-numba leg when the tier is requested, "rf" otherwise."""
    return roundfuse.stepping_tag()


def certified_algorithms(graph):
    """Every roundfuse-certified kernel, with good and garbage guesses."""
    good = {"m": graph.max_ident, "Delta": graph.max_degree}
    return [
        ("luby-mis", luby_mis(), None),
        ("luby-mc", luby_mc(), {"n": graph.n}),
        ("hash-luby", hash_luby_mis(), {"n": graph.n}),
        ("fast-coloring", fast_coloring(), good),
        ("fast-mis", fast_mis(), good),
        ("fast-mis-bad-guess", fast_mis(), {"m": 12, "Delta": 3}),
        ("bitwise-ruling", bitwise_ruling_set(), {"m": graph.max_ident}),
        ("bitwise-ruling-bad-guess", bitwise_ruling_set(), {"m": 5}),
        ("sw-ruling-c2", sw_ruling_set(2), {"n": graph.n}),
        ("h-partition", h_partition(), {"a": 2, "n": graph.n}),
        ("h-partition-overshoot", h_partition(), {"a": 2, "n": graph.n**4}),
    ]


def run_three_ways(graph, algorithm, rng, **kwargs):
    """(reference, per-round batch, round-fused) with stepping checks."""
    ref = run(graph, algorithm, backend="reference", rng=rng, **kwargs)
    with use_roundfuse(False):
        batched = run(graph, algorithm, backend="batch", rng=rng, **kwargs)
        assert last_stepping() == "batch"
    with use_roundfuse(True):
        fused = run(graph, algorithm, backend="batch", rng=rng, **kwargs)
        assert last_stepping() == fused_tag()
    return ref, batched, fused


class TestFusedBitIdentity:
    """fused ≡ batch ≡ reference for every certified kernel (D17)."""

    @pytest.mark.parametrize("rng", RNGS)
    def test_full_runs(self, small_gnp, rng):
        for label, algorithm, guesses in certified_algorithms(small_gnp):
            ref, batched, fused = run_three_ways(
                small_gnp, algorithm, rng, seed=11, guesses=guesses
            )
            assert_results_equal(ref, batched, context=(rng, label, "bat"))
            assert_results_equal(ref, fused, context=(rng, label, "rf"))

    @pytest.mark.parametrize("rounds", (1, 2, 7, 40))
    def test_truncated_runs(self, small_gnp, rounds):
        """Restriction parity — including caps shorter than a schedule
        (where the phase driver declines) and fixed-point truncation."""
        for label, algorithm, guesses in certified_algorithms(small_gnp):
            with use_roundfuse(False):
                batched = run_restricted(
                    small_gnp, algorithm, rounds, default_output="cut",
                    guesses=guesses, backend="batch", rng="counter",
                )
            fused = run_restricted(
                small_gnp, algorithm, rounds, default_output="cut",
                guesses=guesses, backend="batch", rng="counter",
            )
            assert_results_equal(batched, fused, context=(rounds, label))

    @pytest.mark.parametrize("rng", RNGS)
    def test_virtual_runs(self, small_gnp, rng):
        """Fused drives through the virtual (line-graph) batch driver."""
        spec = line_graph_spec(small_gnp)
        guesses = {
            "m": (small_gnp.max_ident + 2) ** 2,
            "Delta": max(1, 2 * small_gnp.max_degree - 2),
        }
        jobs = (
            (fast_mis(), guesses, 400),
            (h_partition(), {"a": 2, "n": small_gnp.n**2}, 60),
        )
        for algorithm, g, budget in jobs:
            outs = {}
            for key, fused_on in (("batch", False), ("rf", True)):
                with use_backend("compiled", rng=rng), use_batch(True), \
                        use_roundfuse(fused_on):
                    domain = VirtualDomain(small_gnp, spec)
                    outs[key] = domain.run_restricted(
                        algorithm, budget, inputs=None, guesses=g,
                        seed=7, salt="rf", default_output=0,
                    )
            assert outs["batch"] == outs["rf"], (rng, algorithm.name)

    @pytest.mark.parametrize("beta", (1, 3))
    def test_pruner_application(self, small_gnp, beta):
        """Pruner kernels (fixed lockstep schedules) through apply()."""
        rng = random.Random(beta)
        tentative = {u: rng.choice([0, 1]) for u in small_gnp.nodes}
        results = {}
        for key, fused_on in (("batch", False), ("rf", True)):
            with use_backend("compiled", rng="counter"), use_batch(True), \
                    use_roundfuse(fused_on):
                results[key] = RulingSetPruning(beta).apply(
                    PhysicalDomain(small_gnp), {}, dict(tentative)
                )
        assert results["batch"].pruned == results["rf"].pruned
        assert results["batch"].new_inputs == results["rf"].new_inputs
        assert results["batch"].rounds == results["rf"].rounds

    def test_nontermination_parity(self, small_gnp):
        """Without truncation both paths raise the same divergence."""
        for fused_on in (False, True):
            with use_roundfuse(fused_on):
                with pytest.raises(NonTerminationError) as err:
                    run(
                        small_gnp, luby_mis(), seed=11, rng="counter",
                        backend="batch", max_rounds=1,
                    )
                assert err.value.rounds == 1

    def test_whole_alternation(self, small_gnp):
        """Theorem-2 pipeline: fused ≡ per-round, steps tagged rf."""
        outcomes = {}
        for key, fused_on in (("batch", False), ("rf", True)):
            with use_backend("compiled", rng="counter"), use_batch(True), \
                    use_roundfuse(fused_on):
                _, _, uniform = TABLE1["luby"].build()
                outcomes[key] = uniform.run(small_gnp, seed=13)
        fused = outcomes["rf"]
        tag = fused_tag()
        assert fused.outputs == outcomes["batch"].outputs
        assert fused.rounds == outcomes["batch"].rounds
        assert all(step.backends == (tag, tag) for step in fused.steps)
        assert all(
            step.backends == ("batch", "batch")
            for step in outcomes["batch"].steps
        )
        assert f"via {tag}/{tag}" in render_trace(fused)
        assert "via batch/batch" in render_trace(outcomes["batch"])


class TestFallbackLadder:
    """Every ineligible configuration degrades per-round, bit-identical."""

    def test_kill_switch(self, small_gnp):
        with use_roundfuse(False):
            off = run(small_gnp, luby_mis(), seed=3, rng="counter",
                      backend="batch")
            assert last_stepping() == "batch"
        with use_roundfuse(True):
            on = run(small_gnp, luby_mis(), seed=3, rng="counter",
                     backend="batch")
            assert last_stepping() == fused_tag()
        assert_results_equal(off, on, context="kill-switch")

    def test_uncertified_algorithm(self, small_gnp):
        """A batch kernel without the capability stays per-round."""
        algo = luby_mis()
        algo.roundfuse = False
        assert capabilities_of(algo)["supports_roundfuse"] is False
        plain = run(small_gnp, algo, seed=3, rng="counter", backend="batch")
        assert last_stepping() == "batch"
        fused = run(small_gnp, luby_mis(), seed=3, rng="counter",
                    backend="batch")
        assert_results_equal(plain, fused, context="uncertified")

    def test_active_faults_degrade(self, small_gnp):
        """A fault plan gates the fused drivers out entirely."""
        nodes = sorted(small_gnp.nodes)
        plan = FaultPlan({nodes[0]: crash_at(1), nodes[3]: drop(0.5)})
        base = run(small_gnp, luby_mis(), seed=3, rng="counter",
                   backend="reference", faults=plan)
        got = run(small_gnp, luby_mis(), seed=3, rng="counter",
                  backend="batch", faults=plan)
        assert last_stepping() not in ("rf", "jit")
        assert_results_equal(base, got, context="faulted")

    def test_track_bits_degrades(self, small_gnp):
        """Message-size tracking keeps the per-node path (no kernel)."""
        tracked = run(small_gnp, luby_mis(), seed=3, rng="counter",
                      backend="batch", track_bits=True)
        assert last_stepping() == "per-node"
        assert tracked.max_message_bits is not None
        fused = run(small_gnp, luby_mis(), seed=3, rng="counter",
                    backend="batch")
        assert tracked.outputs == fused.outputs
        assert tracked.rounds == fused.rounds
        assert tracked.messages == fused.messages

    def test_sharded_execution_falls_through(self, small_gnp):
        """The sharded loop exposes neither fused seam — per-round,
        same bits."""
        with use_roundfuse(True):
            fused = run(small_gnp, luby_mis(), seed=3, rng="counter",
                        backend="batch")
            assert last_stepping() == fused_tag()
            sharded = run(small_gnp, luby_mis(), seed=3, rng="counter",
                          shards=2)
            assert last_stepping() not in ("rf", "jit")
        assert_results_equal(fused, sharded, context="sharded")

    def test_drive_declines_stepped_kernel(self, small_gnp):
        """Only fresh kernels fuse — a replayed round 0 would corrupt."""
        bg = batch_graph_of(small_gnp.compiled())
        from repro.algorithms.ruling_sets import BitwiseRulingKernel

        kernel = BitwiseRulingKernel(bg, 6)
        assert roundfuse.drive_kernel(kernel, 3) is None  # cap < schedule
        kernel.start()
        kernel.step()
        assert roundfuse.drive_kernel(kernel, 100) is None  # already moving
        done = BitwiseRulingKernel(bg, 6)
        done.start()
        done.run_phases()
        assert roundfuse.drive_kernel(done, 100) is None  # already done


class TestJitTier:
    """backend="jit" resolves everywhere; numba absence is invisible."""

    def test_backend_resolves_and_batches(self):
        backend, _ = resolve_backend("jit", None)
        assert backend == "jit"
        assert batching_requested("jit") is True

    def test_numba_absent_runs_numpy_tier(self, small_gnp):
        """The CI default leg: no numba, so "jit" is the pure-numpy
        fused tier, bit-identical and tagged "rf"."""
        with use_roundfuse(True):
            base = run(small_gnp, luby_mis(), seed=3, rng="counter",
                       backend="batch")
            jit = run(small_gnp, luby_mis(), seed=3, rng="counter",
                      backend="jit")
            expected_tag = "jit" if jitkernels.available() else "rf"
            assert last_stepping() == expected_tag
        assert_results_equal(base, jit, context="jit-backend")

    @pytest.mark.parametrize("rng", RNGS)
    def test_jit_matrix_matches_batch(self, small_gnp, rng):
        """The full certified matrix under the jit request — compiled
        loops when numba is importable (the CI with-numba leg), the
        numpy fused loops otherwise.  Same bits either way."""
        for label, algorithm, guesses in certified_algorithms(small_gnp):
            with use_roundfuse(False):
                batched = run(small_gnp, algorithm, seed=11, rng=rng,
                              guesses=guesses, backend="batch")
            jit = run(small_gnp, algorithm, seed=11, rng=rng,
                      guesses=guesses, backend="jit")
            assert_results_equal(batched, jit, context=(rng, label))

    def test_request_without_numba_is_inert(self, small_gnp):
        if jitkernels.available():  # pragma: no cover - numba leg only
            pytest.skip("numba installed; absence discipline not testable")
        with use_jit(True):
            assert jitkernels.active() is False
            assert jitkernels.peeling_loop() is None
            assert jitkernels.bitwise_loop() is None
            assert jitkernels.flood_loop() is None
            assert roundfuse.stepping_tag() == "rf"


class TestCapabilityPublication:
    """supports_roundfuse travels on the capability records."""

    def test_capability_table_rows(self):
        table = capability_table()
        for row_id, caps in table.items():
            assert "supports_roundfuse" in caps, row_id
            assert "supports_roundfuse" in caps["pruning"], row_id
            # Certification implies a batch kernel to fuse.
            if caps["supports_roundfuse"]:
                assert caps["supports_batch"], row_id
        assert table["luby"]["supports_roundfuse"] is True
        assert table["luby"]["pruning"]["supports_roundfuse"] is True
        # Host orchestrations never fuse at top level.
        assert table["matching"]["supports_roundfuse"] is False

    def test_certified_algorithms_advertise(self, small_gnp):
        for label, algorithm, _ in certified_algorithms(small_gnp):
            assert capabilities_of(algorithm)["supports_roundfuse"], label
        assert capabilities_of(MatchingPruning())["supports_roundfuse"]

    def test_flag_requires_batch_kernel(self):
        from repro.local import Broadcast, LocalAlgorithm, NodeProcess

        class Echo(NodeProcess):
            def start(self):
                self.finish(1)
                return Broadcast(None)

        algo = LocalAlgorithm(name="echo", process=Echo, roundfuse=True)
        assert capabilities_of(algo)["supports_roundfuse"] is False


class TestLockstepKernelCache:
    """The cached undone-indices satellite."""

    def test_undone_indices_cached(self, small_gnp):
        bg = batch_graph_of(small_gnp.compiled())
        kernel = batch_module.LockstepKernel(bg, schedule=3)
        first = kernel.undone_indices()
        assert first == list(range(bg.n))
        assert kernel.undone_indices() is first

    def test_mis_sweep_stays_dynamic(self, small_gnp):
        """MIS sweep-mode undone sets shrink per round — never cached."""
        from repro.algorithms.fast_mis import MISBatchKernel

        with use_roundfuse(False):
            truncated = run_restricted(
                small_gnp, fast_mis(), 3, default_output=0,
                guesses={"m": small_gnp.max_ident,
                         "Delta": small_gnp.max_degree},
                backend="batch", rng="counter",
            )
        fused = run_restricted(
            small_gnp, fast_mis(), 3, default_output=0,
            guesses={"m": small_gnp.max_ident,
                     "Delta": small_gnp.max_degree},
            backend="batch", rng="counter",
        )
        assert truncated.truncated == fused.truncated
        assert MISBatchKernel.undone_indices is not None
