"""Alternating-engine unit tests: ledger, gluing, records, budget cuts."""

from __future__ import annotations

import networkx as nx

from repro.algorithms.greedy import greedy_mis
from repro.core import AlternatingEngine, mis_pruning, render_trace
from repro.core.domain import PhysicalDomain
from repro.local import SimGraph, zero_round_algorithm


def sim(graph):
    return SimGraph.from_networkx(graph)


def oracle_mis_algorithm(graph):
    """Zero-round algorithm that outputs a precomputed MIS bit."""
    solution = greedy_mis(graph)
    return zero_round_algorithm("oracle", lambda ctx: solution[ctx.node])


def garbage_algorithm():
    return zero_round_algorithm("garbage", lambda ctx: 0)


class TestEngineLedger:
    def test_charges_budget_plus_pruning(self):
        g = sim(nx.cycle_graph(9))
        engine = AlternatingEngine(g, {}, mis_pruning(), seed=1)
        pruned = engine.step_algorithm(
            garbage_algorithm(), iteration=1, index=1, guesses={}, budget=5
        )
        assert pruned == 0
        assert engine.rounds == 5 + mis_pruning().rounds

    def test_oracle_prunes_everything(self):
        g = sim(nx.cycle_graph(9))
        engine = AlternatingEngine(g, {}, mis_pruning(), seed=1)
        pruned = engine.step_algorithm(
            oracle_mis_algorithm(g), iteration=1, index=1, guesses={}, budget=3
        )
        assert pruned == 9
        assert engine.done

    def test_outputs_glued_from_pruned_steps(self):
        g = sim(nx.path_graph(6))
        engine = AlternatingEngine(g, {}, mis_pruning(), seed=1)
        engine.step_algorithm(
            oracle_mis_algorithm(g), iteration=1, index=1, guesses={}, budget=2
        )
        result = engine.finalize("demo")
        from repro.problems import MIS

        assert MIS.is_solution(g, {}, result.outputs)
        assert result.completed

    def test_finalize_defaults_leftovers(self):
        g = sim(nx.path_graph(4))
        engine = AlternatingEngine(
            g, {}, mis_pruning(), seed=1, default_output="raw"
        )
        engine.step_algorithm(
            garbage_algorithm(), iteration=1, index=1, guesses={}, budget=1
        )
        result = engine.finalize("demo", completed=False)
        assert set(result.outputs.values()) == {"raw"}
        assert not result.completed

    def test_step_on_empty_domain_is_free(self):
        g = sim(nx.empty_graph(0))
        engine = AlternatingEngine(g, {}, mis_pruning(), seed=1)
        assert engine.done
        pruned = engine.step_algorithm(
            garbage_algorithm(), iteration=1, index=1, guesses={}, budget=99
        )
        assert pruned == 0
        assert engine.rounds == 0

    def test_charge_helper(self):
        g = sim(nx.path_graph(3))
        engine = AlternatingEngine(g, {}, mis_pruning(), seed=1)
        engine.charge(11)
        assert engine.rounds == 11


class TestRecordsAndTrace:
    def test_step_records_fields(self):
        g = sim(nx.cycle_graph(6))
        engine = AlternatingEngine(g, {}, mis_pruning(), seed=1)
        engine.step_algorithm(
            oracle_mis_algorithm(g),
            iteration=3,
            index=2,
            guesses={"n": 64},
            budget=4,
        )
        record = engine.steps[0]
        assert record.iteration == 3
        assert record.index == 2
        assert record.guesses == {"n": 64}
        assert record.nodes_before == 6
        assert record.nodes_after == 0

    def test_trace_contains_guesses(self):
        g = sim(nx.cycle_graph(6))
        engine = AlternatingEngine(g, {}, mis_pruning(), seed=1)
        engine.step_algorithm(
            oracle_mis_algorithm(g),
            iteration=1,
            index=1,
            guesses={"n": 64},
            budget=4,
        )
        text = render_trace(engine.finalize("demo"))
        assert "n=64" in text

    def test_domain_input_accepted(self):
        g = sim(nx.path_graph(5))
        engine = AlternatingEngine(
            PhysicalDomain(g), {}, mis_pruning(), seed=1
        )
        assert engine.active == 5
