"""Bench-harness units: measurement, reporting, workloads."""

from __future__ import annotations

import pytest

from repro.algorithms import TABLE1
from repro.algorithms.fast_mis import fast_mis_nonuniform
from repro.algorithms.matching import line_matching_nonuniform
from repro.bench import (
    WORKLOADS,
    build_graph,
    format_table,
    growth_factors,
    measure_nonuniform,
    measure_row,
    sized_suite,
)
from repro.graphs import families
from repro.problems import MIS


class TestWorkloads:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_all_workloads_build(self, name):
        graph = WORKLOADS[name](32, seed=1)
        sim = build_graph(graph, seed=1)
        assert sim.n >= 16
        assert sim.max_ident <= max(8, sim.n**3)

    def test_sized_suite_labels(self):
        suite = sized_suite("tree", (16, 32), seed=1)
        assert [label for label, _ in suite] == ["tree-n16", "tree-n32"]


class TestMeasurement:
    def test_measure_nonuniform_local_box(self):
        graph = build_graph(families.random_regular(24, 4, seed=2), seed=2)
        rounds, outputs, params = measure_nonuniform(
            fast_mis_nonuniform(), graph, seed=3
        )
        assert rounds > 0
        assert MIS.is_solution(graph, {}, outputs)
        assert params["Delta"] == 4

    def test_measure_nonuniform_host_box(self):
        graph = build_graph(families.random_regular(16, 4, seed=2), seed=2)
        rounds, outputs, params = measure_nonuniform(
            line_matching_nonuniform(), graph, seed=3
        )
        assert rounds > 0
        assert set(outputs) == set(graph.nodes)

    def test_measure_row_fields(self):
        graph = build_graph(families.random_regular(24, 4, seed=2), seed=2)
        meas = measure_row(TABLE1["mis-fast"], "demo", graph, seed=4)
        assert meas.uniform_ok and meas.nonuniform_ok
        assert meas.ratio > 0
        row = meas.row()
        assert row[0] == "demo"
        assert "ok" in row


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["a", "long-header"], [[1, 2], [333, 4]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_growth_factors(self):
        assert growth_factors([10, 20, 40]) == [2.0, 2.0]
        assert growth_factors([0, 5]) == [float("inf")]
        assert growth_factors([7]) == []
