"""Integer-math helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.mathutils import (
    ceil_log2,
    clamp,
    floor_log2,
    int_ceil_div,
    int_nthroot_ceil,
    int_nthroot_floor,
    is_prime,
    log_star,
    next_prime,
)


class TestLogs:
    @pytest.mark.parametrize(
        "x,expected", [(1, 0), (2, 1), (3, 2), (4, 2), (1024, 10), (1025, 11)]
    )
    def test_ceil_log2(self, x, expected):
        assert ceil_log2(x) == expected

    @pytest.mark.parametrize(
        "x,expected", [(1, 0), (2, 1), (3, 1), (4, 2), (1023, 9)]
    )
    def test_floor_log2(self, x, expected):
        assert floor_log2(x) == expected

    @pytest.mark.parametrize(
        "x,expected", [(1, 0), (2, 1), (4, 2), (16, 3), (65536, 4)]
    )
    def test_log_star(self, x, expected):
        assert log_star(x) == expected

    def test_log_star_tower(self):
        # 2^1000 -> 1000 -> 9.97 -> 3.32 -> 1.73 -> 0.79: five steps.
        assert log_star(2.0**1000) == 5


class TestPrimes:
    def test_small_primes(self):
        primes = [q for q in range(60) if is_prime(q)]
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]

    def test_known_carmichael_rejected(self):
        assert not is_prime(561)
        assert not is_prime(41041)

    def test_large_known_prime(self):
        assert is_prime(2**89 - 1)
        assert not is_prime(2**89 - 3)

    def test_next_prime(self):
        assert next_prime(14) == 17
        assert next_prime(17) == 17
        assert is_prime(next_prime(2**40))

    @given(st.integers(min_value=2, max_value=10**6))
    @settings(max_examples=80, deadline=None)
    def test_against_trial_division(self, q):
        def trial(x):
            if x < 2:
                return False
            return all(x % f for f in range(2, int(math.isqrt(x)) + 1))

        assert is_prime(q) == trial(q)


class TestRoots:
    @given(
        value=st.integers(min_value=1, max_value=2**220),
        k=st.integers(min_value=1, max_value=96),
    )
    @settings(max_examples=150, deadline=None)
    def test_nthroot_ceil_exact(self, value, k):
        r = int_nthroot_ceil(value, k)
        assert r**k >= value
        assert r == 1 or (r - 1) ** k < value

    @given(
        root=st.integers(min_value=1, max_value=10**6),
        k=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=80, deadline=None)
    def test_perfect_powers(self, root, k):
        assert int_nthroot_floor(root**k, k) == root
        assert int_nthroot_ceil(root**k, k) == root


class TestMisc:
    def test_ceil_div(self):
        assert int_ceil_div(7, 3) == 3
        assert int_ceil_div(9, 3) == 3

    def test_clamp(self):
        assert clamp(5, 1, 3) == 3
        assert clamp(-5, 1, 3) == 1
        assert clamp(2, 1, 3) == 2
