"""Graph substrate: families, identifiers, parameters."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidInstanceError
from repro.graphs import (
    arboricity_bounds,
    degeneracy,
    density_arboricity,
    families,
    graph_parameters,
    identifiers,
    max_density,
    nash_williams_exact,
)
from repro.local import SimGraph


class TestFamilies:
    def test_catalog_shapes(self):
        catalog = families.family_catalog()
        assert len(catalog) >= 12
        for name, graph in catalog.items():
            assert graph.number_of_nodes() > 0, name

    def test_forest_union_arboricity(self):
        for k in (1, 2, 4):
            graph = families.forest_union(40, k, seed=3)
            assert density_arboricity(graph) <= k

    def test_tree_is_tree(self):
        graph = families.random_tree(30, seed=1)
        assert nx.is_tree(graph)

    def test_star_with_noise_high_degree(self):
        graph = families.star_with_noise(50, 20, seed=2)
        assert max(dict(graph.degree()).values()) == 49

    def test_regular_validation(self):
        with pytest.raises(InvalidInstanceError):
            families.random_regular(5, 3)  # odd product

    def test_disjoint_union_counts(self):
        combined = families.disjoint_union(
            [families.path(5), families.cycle(6)]
        )
        assert combined.number_of_nodes() == 11

    def test_grid_planar_bounds(self):
        graph = families.grid(5, 5)
        assert max(dict(graph.degree()).values()) <= 4
        assert density_arboricity(graph) <= 2

    def test_dumbbell_structure(self):
        graph = families.dumbbell(6, 2)
        degrees = sorted(dict(graph.degree()).values())
        assert degrees[-1] >= 5


class TestIdentifiers:
    @pytest.mark.parametrize("name", list(identifiers.SCHEMES))
    def test_schemes_valid(self, name):
        graph = families.gnp(30, 0.15, seed=1)
        scheme = identifiers.SCHEMES[name]
        idents = scheme(graph) if name in (
            "sequential",
            "adversarial_path",
        ) else scheme(graph, seed=3)
        assert identifiers.validate_idents(graph, idents)

    def test_poly_space(self):
        graph = families.path(50)
        idents = identifiers.poly_idents(graph, seed=2)
        assert max(idents.values()) <= 50**3

    def test_compact_is_permutation(self):
        graph = families.path(20)
        idents = identifiers.compact_idents(graph, seed=1)
        assert sorted(idents.values()) == list(range(1, 21))

    def test_validation_rejects_duplicates(self):
        graph = families.path(3)
        with pytest.raises(InvalidInstanceError):
            identifiers.validate_idents(graph, {0: 1, 1: 1, 2: 2})


class TestArboricityMachinery:
    def test_known_densities(self):
        from fractions import Fraction

        assert max_density(nx.complete_graph(4)) == Fraction(3, 2)
        assert max_density(nx.cycle_graph(7)) == Fraction(1)
        assert max_density(nx.empty_graph(5)) == 0

    def test_density_of_planted_dense_subgraph(self):
        graph = nx.disjoint_union(nx.complete_graph(6), nx.path_graph(30))
        from fractions import Fraction

        assert max_density(graph) == Fraction(15, 6)

    def test_degeneracy_values(self):
        assert degeneracy(nx.complete_graph(5)) == 4
        assert degeneracy(nx.random_tree(20, seed=1) if hasattr(nx, "random_tree") else families.random_tree(20, seed=1)) == 1
        assert degeneracy(nx.empty_graph(4)) == 0

    @given(
        n=st.integers(min_value=2, max_value=10),
        p=st.floats(min_value=0.1, max_value=0.9),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_sandwich_against_bruteforce(self, n, p, seed):
        graph = nx.gnp_random_graph(n, p, seed=seed)
        if graph.number_of_edges() == 0:
            return
        exact = nash_williams_exact(graph)
        dens = density_arboricity(graph)
        dgen = degeneracy(graph)
        assert dens <= exact <= dgen
        assert dgen <= 2 * exact

    def test_bounds_helper(self):
        graph = families.forest_union(30, 3, seed=1)
        lower, upper = arboricity_bounds(graph)
        assert lower <= upper

    def test_non_decreasing_under_subgraphs(self):
        graph = families.gnp(25, 0.3, seed=5)
        whole = density_arboricity(graph)
        sub = graph.subgraph(list(graph.nodes())[:15])
        assert density_arboricity(sub) <= whole


class TestGraphParameters:
    def test_all_four(self):
        graph = families.gnp(20, 0.2, seed=1)
        idents = identifiers.poly_idents(graph, seed=1)
        sim = SimGraph.from_networkx(graph, idents=idents)
        params = graph_parameters(sim)
        assert params["n"] == 20
        assert params["Delta"] == sim.max_degree
        assert params["m"] == max(idents.values())
        assert params["a"] >= 1

    def test_parameter_registry(self):
        from repro.params import PARAMETERS, actual_parameters

        graph = families.path(10)
        sim = SimGraph.from_networkx(graph)
        values = actual_parameters(sim, ("n", "Delta", "m"))
        # integer labels 0..9 are shifted to positive identities 1..10
        assert values == {"n": 10, "Delta": 2, "m": 10}
        assert set(PARAMETERS) == {"n", "Delta", "m", "a"}
