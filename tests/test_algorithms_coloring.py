"""Coloring stack: Linial schedules, KW reduction, fast coloring/MIS.

Includes the *declared-bound enforcement grid*: every declared runtime
bound must dominate the actual schedule length over a wide sweep of
guesses — the property every theorem in the paper silently relies on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.color_reduction import (
    KWReducer,
    kw_schedule,
    kw_total_rounds,
    sequential_reduce_rounds,
)
from repro.algorithms.fast_coloring import (
    fast_coloring,
    fast_coloring_bound,
    fast_coloring_rounds,
)
from repro.algorithms.fast_mis import (
    fast_mis,
    fast_mis_bound,
    fast_mis_rounds,
)
from repro.algorithms.lambda_coloring import (
    lambda_coloring,
    lambda_coloring_bound,
    lambda_coloring_rounds,
)
from repro.algorithms.linial import (
    best_system,
    linial_coloring,
    linial_fixpoint_palette,
    linial_schedule,
    linial_steps_upper,
    reduce_color,
)
from repro.local import run
from repro.mathutils import is_prime
from repro.problems import MIS, ColoringProblem, PROPER_COLORING


class TestSetSystems:
    @pytest.mark.parametrize("m", [10, 1000, 10**6, 2**40, 2**120])
    @pytest.mark.parametrize("delta", [1, 3, 8, 30])
    def test_best_system_admissible(self, m, delta):
        q, d = best_system(m, delta)
        assert is_prime(q)
        assert q >= delta * d + 1
        assert q ** (d + 1) >= m

    @pytest.mark.parametrize("delta", [1, 2, 5, 16, 64])
    def test_schedule_reaches_fixpoint_bound(self, delta):
        for m in (100, 10**6, 2**40):
            _, palette = linial_schedule(m, delta)
            assert palette <= max(linial_fixpoint_palette(delta), m)
            if m > linial_fixpoint_palette(delta):
                assert palette <= linial_fixpoint_palette(delta)

    @pytest.mark.parametrize("m", [2, 100, 10**4, 10**9, 2**60, 2**150])
    def test_schedule_length_within_declared(self, m):
        for delta in (1, 4, 16, 80):
            steps, _ = linial_schedule(m, delta)
            assert len(steps) <= linial_steps_upper(m), (m, delta)

    @given(
        color=st.integers(min_value=0, max_value=10**9),
        rivals=st.lists(
            st.integers(min_value=0, max_value=10**9), max_size=8
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_reduce_color_avoids_distinct_rivals(self, color, rivals):
        q, d = best_system(10**9 + 1, 8)
        if len(rivals) > 8:
            rivals = rivals[:8]
        new = reduce_color(color, rivals, q, d)
        assert 0 <= new < q * q
        for rival in rivals:
            if rival != color:
                assert new != reduce_color(rival, [], q, d) or True
        # the real guarantee: distinct old colors -> distinct new points
        # against *this* node's choice
        space = q ** (d + 1)
        for rival in rivals:
            if rival % space != color % space:
                x, val = divmod(new, q)
                from repro.algorithms.linial import _digits, _poly_eval

                assert _poly_eval(_digits(rival % space, q, d + 1), x, q) != val


class TestKWReducer:
    def test_schedule_halves(self):
        phases = kw_schedule(400, 9)
        assert phases[0] == 400
        assert phases == sorted(phases, reverse=True)
        assert kw_total_rounds(400, 9) == len(phases) * 20

    def test_no_phases_when_small(self):
        assert kw_schedule(5, 9) == []

    def test_beats_sequential_on_big_palettes(self):
        assert kw_total_rounds(10_000, 10) < sequential_reduce_rounds(
            10_000, 10
        )

    def test_reducer_isolated_node(self):
        reducer = KWReducer(100, 4, 37)
        rounds = 0
        while not reducer.done:
            reducer.step([])
            rounds += 1
        assert rounds == reducer.rounds_total
        assert 0 <= reducer.color <= 4


GUESS_GRID = [
    (10, 1),
    (100, 2),
    (1000, 3),
    (50, 8),
    (10**6, 5),
    (10**6, 20),
    (2**40, 12),
    (2**96, 40),
    (17, 16),
    (3, 1),
]


class TestDeclaredBoundsDominateSchedules:
    @pytest.mark.parametrize("m,delta", GUESS_GRID)
    def test_fast_coloring(self, m, delta):
        assert fast_coloring_rounds(m, delta) <= fast_coloring_bound().value(
            {"m": m, "Delta": delta}
        )

    @pytest.mark.parametrize("m,delta", GUESS_GRID)
    def test_fast_mis(self, m, delta):
        assert fast_mis_rounds(m, delta) <= fast_mis_bound().value(
            {"m": m, "Delta": delta}
        )

    @pytest.mark.parametrize("m,delta", GUESS_GRID)
    @pytest.mark.parametrize("lam", [1, 2, 8])
    def test_lambda_coloring(self, m, delta, lam):
        assert lambda_coloring_rounds(lam, m, delta) <= lambda_coloring_bound(
            lam
        ).value({"m": m, "Delta": delta})


class TestExecutionWithCorrectGuesses:
    def test_linial_proper_on_catalog(self, catalog):
        for name, graph in catalog.items():
            if graph.n == 0:
                continue
            guesses = {
                "m": graph.max_ident,
                "Delta": max(1, graph.max_degree),
            }
            result = run(graph, linial_coloring(), guesses=guesses)
            assert PROPER_COLORING.is_solution(graph, {}, result.outputs), name

    def test_fast_coloring_palette(self, catalog):
        for name, graph in catalog.items():
            if graph.n == 0:
                continue
            delta = max(1, graph.max_degree)
            guesses = {"m": graph.max_ident, "Delta": delta}
            result = run(graph, fast_coloring(), guesses=guesses)
            problem = ColoringProblem(max_colors=delta + 1)
            assert problem.is_solution(graph, {}, result.outputs), (
                name,
                problem.violations(graph, {}, result.outputs)[:3],
            )
            assert result.rounds <= fast_coloring_rounds(
                graph.max_ident, delta
            )

    def test_fast_mis_on_catalog(self, catalog):
        for name, graph in catalog.items():
            delta = max(1, graph.max_degree)
            guesses = {"m": graph.max_ident, "Delta": delta}
            result = run(graph, fast_mis(), guesses=guesses)
            assert MIS.is_solution(graph, {}, result.outputs), name

    @pytest.mark.parametrize("lam", [1, 3, 10])
    def test_lambda_coloring_colors_and_rounds(self, medium_gnp, lam):
        delta = medium_gnp.max_degree
        guesses = {"m": medium_gnp.max_ident, "Delta": delta}
        result = run(medium_gnp, lambda_coloring(lam), guesses=guesses)
        assert PROPER_COLORING.is_solution(medium_gnp, {}, result.outputs)
        cap = max(lam * (delta + 1), linial_fixpoint_palette(delta))
        assert max(result.outputs.values()) <= cap

    def test_lambda_tradeoff_monotone_rounds(self, medium_gnp):
        """Exact schedule shortens as λ grows (the row's tradeoff)."""
        m, delta = medium_gnp.max_ident, medium_gnp.max_degree
        rounds = [
            lambda_coloring_rounds(lam, m, delta) for lam in (1, 2, 4, 8, 16)
        ]
        assert rounds == sorted(rounds, reverse=True)

    def test_initial_color_input_respected(self, path12):
        """Section 5.2's identities-as-colors convention."""
        inputs = {u: {"color": path12.ident[u]} for u in path12.nodes}
        guesses = {"m": path12.max_ident, "Delta": 2}
        with_input = run(
            path12, fast_coloring(), inputs=inputs, guesses=guesses
        )
        without = run(path12, fast_coloring(), guesses=guesses)
        assert with_input.outputs == without.outputs


class TestBadGuessBehaviour:
    """Bad guesses may yield garbage, but on schedule and crash-free."""

    @pytest.mark.parametrize("m,delta", [(2, 1), (5, 1), (100, 2)])
    def test_underestimates_run_to_schedule(self, medium_gnp, m, delta):
        result = run(
            medium_gnp, fast_coloring(), guesses={"m": m, "Delta": delta}
        )
        assert result.rounds <= fast_coloring_rounds(m, delta)

    def test_overestimates_still_correct(self, small_gnp):
        guesses = {
            "m": small_gnp.max_ident * 1000,
            "Delta": small_gnp.max_degree * 10,
        }
        result = run(small_gnp, fast_mis(), guesses=guesses)
        assert MIS.is_solution(small_gnp, {}, result.outputs)
