"""Batched frontier-step infrastructure (DESIGN.md D10).

Covers the pieces under the equivalence suite's bit-identity umbrella:
the vectorized counter draws, the numpy-free fallback, the capability
records that drive backend selection, and the batch-path plumbing.
"""

from __future__ import annotations

import pytest

from repro.algorithms import TABLE1, capability_table
from repro.algorithms.arboricity import h_partition
from repro.algorithms.fast_mis import fast_mis
from repro.algorithms.luby import luby_mis
from repro.algorithms.ruling_sets import bitwise_ruling_set
from repro.core.domain import PhysicalDomain, VirtualDomain
from repro.core.pruning import (
    MatchingPruning,
    RulingSetPruning,
    SLCPruning,
    mis_pruning,
)
from repro.graphs import line_graph_spec
from repro.local import CounterRNG, run, use_batch
from repro.local import batch as batch_module
from repro.local.algorithm import HostAlgorithm, capabilities_of
from repro.local.context import counter_rng, run_key
from repro.local.runner import batching_requested, resolve_backend

numpy = pytest.importorskip("numpy")


class TestCounterRandomBatch:
    def test_matches_scalar_draws_element_for_element(self):
        key = run_key(7, "salt")
        idents = [1, 2, 97, 12345, 2**66 + 3]
        keys = batch_module.stream_keys(key, idents)
        streams = [counter_rng(key, ident) for ident in idents]
        for draw in range(1, 7):
            batched = CounterRNG.random_batch(keys, draw)
            scalar = [stream.getrandbits(62) for stream in streams]
            assert batched.tolist() == scalar, draw

    @pytest.mark.parametrize("bits", (1, 8, 53, 62, 64))
    def test_bit_widths(self, bits):
        keys = batch_module.stream_keys(3, [5, 6, 7])
        batched = CounterRNG.random_batch(keys, 1, bits)
        scalar = [CounterRNG(int(k)).getrandbits(bits) for k in keys.tolist()]
        assert batched.tolist() == scalar

    def test_rejects_bad_arguments(self):
        keys = batch_module.stream_keys(0, [1])
        with pytest.raises(ValueError):
            CounterRNG.random_batch(keys, 0)
        with pytest.raises(ValueError):
            CounterRNG.random_batch(keys, 1, 65)

    def test_draw_source_matches_scalar_consumption(self):
        """CounterDraws(idx, t) is the t-th draw of each node's stream."""
        key = run_key(1, 0)
        idents = [11, 22, 33, 44]
        draws = batch_module.CounterDraws(batch_module.stream_keys(key, idents))
        idx = numpy.array([0, 2, 3])
        second = draws.draws(idx, 2)
        for position, node in enumerate(idx.tolist()):
            stream = counter_rng(key, idents[node])
            stream.getrandbits(62)
            assert int(second[position]) == stream.getrandbits(62)


class TestFallbackWithoutNumpy:
    def test_runs_green_and_identical(self, small_gnp, monkeypatch):
        """With numpy gone every path falls back to per-node stepping."""
        with use_batch(False):
            expected = run(small_gnp, luby_mis(), seed=3)
        monkeypatch.setattr(batch_module, "_np", None)
        assert not batch_module.available()
        for backend in ("compiled", "batch"):
            result = run(small_gnp, luby_mis(), seed=3, backend=backend)
            assert result.outputs == expected.outputs
            assert result.rounds == expected.rounds
            assert result.messages == expected.messages

    def test_virtual_domain_falls_back(self, small_gnp, monkeypatch):
        spec = line_graph_spec(small_gnp)
        guesses = {"m": small_gnp.max_ident**2, "Delta": 2 * small_gnp.max_degree}
        domain = VirtualDomain(small_gnp, spec)
        with use_batch(False):
            expected = domain.run_restricted(
                fast_mis(), 40, seed=5, guesses=guesses
            )
        monkeypatch.setattr(batch_module, "_np", None)
        domain = VirtualDomain(small_gnp, spec)
        actual = domain.run_restricted(fast_mis(), 40, seed=5, guesses=guesses)
        assert actual == expected

    def test_random_batch_raises_cleanly(self, monkeypatch):
        from repro.errors import ParameterError

        monkeypatch.setattr(batch_module, "_np", None)
        with pytest.raises(ParameterError):
            CounterRNG.random_batch([1, 2], 1)

    def test_new_kernels_fall_back(self, small_gnp, monkeypatch):
        """Bitwise ruling and H-partition run green without numpy."""
        jobs = (
            (bitwise_ruling_set(), {"m": small_gnp.max_ident}),
            (h_partition(), {"a": 2, "n": small_gnp.n}),
        )
        expected = []
        with use_batch(False):
            for algo, guesses in jobs:
                expected.append(run(small_gnp, algo, seed=3, guesses=guesses))
        monkeypatch.setattr(batch_module, "_np", None)
        for (algo, guesses), want in zip(jobs, expected):
            got = run(small_gnp, algo, seed=3, guesses=guesses, backend="batch")
            assert got.outputs == want.outputs
            assert got.rounds == want.rounds
            assert got.messages == want.messages

    def test_pruner_kernels_fall_back(self, small_gnp, monkeypatch):
        """Pruning applications run green (and identically) without numpy."""
        tentative = {u: small_gnp.ident[u] % 2 for u in small_gnp.nodes}
        pruners = (mis_pruning(), MatchingPruning())
        expected = []
        with use_batch(False):
            for pruner in pruners:
                expected.append(
                    pruner.apply(PhysicalDomain(small_gnp), {}, tentative)
                )
        monkeypatch.setattr(batch_module, "_np", None)
        for pruner, want in zip(pruners, expected):
            got = pruner.apply(PhysicalDomain(small_gnp), {}, tentative)
            assert got.pruned == want.pruned
            assert got.new_inputs == want.new_inputs
            assert got.rounds == want.rounds


class TestCapabilities:
    def test_local_algorithm_records(self):
        caps = capabilities_of(luby_mis())
        assert caps["kind"] == "node"
        assert caps["supports_batch"] is True
        assert caps["randomized"] is True
        plain = capabilities_of(HostAlgorithm())
        assert plain["kind"] == "host"
        assert plain["supports_batch"] is False
        assert capabilities_of(object()) == {}

    def test_registry_table(self):
        table = capability_table()
        assert set(table) == set(TABLE1)
        assert table["mis-fast"]["supports_batch"] is True
        assert table["mis-nonly"]["supports_batch"] is True
        assert table["luby"]["supports_batch"] is True
        assert table["ruling-c1"]["supports_batch"] is True
        assert table["matching"]["kind"] == "host"
        assert table["matching"]["inner_supports_batch"] is True
        assert table["mis-arb-product"]["kind"] == "host"
        for caps in table.values():
            assert caps["domains"]

    def test_registry_table_covers_pruners(self):
        """Every row republishes its pruner's capability record."""
        table = capability_table()
        for row_id, caps in table.items():
            prune_caps = caps["pruning"]
            assert prune_caps["kind"] == "pruning", row_id
            assert prune_caps["supports_batch"] is True, row_id
            assert prune_caps["rounds"] >= 1, row_id
            assert prune_caps["name"], row_id

    def test_pruner_capability_records(self):
        caps = capabilities_of(RulingSetPruning(beta=3))
        assert caps["kind"] == "pruning"
        assert caps["rounds"] == 4
        assert caps["supports_batch"] is True
        assert capabilities_of(MatchingPruning())["supports_batch"] is True
        assert capabilities_of(SLCPruning())["supports_batch"] is True

        class ApplyOnly(RulingSetPruning):
            """Wrapper overriding apply() without a concrete algorithm."""

            def algorithm(self):
                raise NotImplementedError

        conservative = capabilities_of(ApplyOnly())
        assert conservative["kind"] == "pruning"
        assert conservative["supports_batch"] is False

    def test_runner_rejects_non_node_kinds(self, small_gnp):
        with pytest.raises(TypeError):
            run(small_gnp, HostAlgorithm())


class TestBackendSelection:
    def test_batch_backend_resolves(self):
        backend, rng = resolve_backend("batch", None)
        assert backend == "batch"
        assert rng == "counter"
        assert batching_requested("batch") is True
        assert batching_requested("reference") is False

    def test_batch_request_overrides_disabled_switch(self, small_gnp):
        with use_batch(False):
            assert batching_requested("compiled") is False
            assert batching_requested("batch") is True
            pernode = run(small_gnp, luby_mis(), seed=3, backend="compiled")
            forced = run(small_gnp, luby_mis(), seed=3, backend="batch")
        assert pernode.outputs == forced.outputs
        assert pernode.rounds == forced.rounds

    def test_track_bits_falls_back(self, small_gnp):
        """Message-size instrumentation always uses per-node stepping."""
        result = run(
            small_gnp, luby_mis(), seed=3, backend="batch", track_bits=True
        )
        assert result.max_message_bits is not None
        assert result.max_message_bits > 0

    def test_kernel_built_only_when_registered(self, small_gnp):
        from repro.local.batch import make_engine_kernel

        cg = small_gnp.compiled()
        kernel = make_engine_kernel(
            luby_mis(), cg, inputs={}, guesses={}, seed=0, salt=0,
            rng_mode="counter", track_bits=False, enabled=True,
        )
        assert kernel is not None
        from repro.local.algorithm import LocalAlgorithm, NodeProcess

        plain = LocalAlgorithm("plain", NodeProcess)
        assert (
            make_engine_kernel(
                plain, cg, inputs={}, guesses={}, seed=0, salt=0,
                rng_mode="counter", track_bits=False, enabled=True,
            )
            is None
        )

    def test_setup_declares_numpy(self):
        from pathlib import Path

        text = Path(__file__).resolve().parents[1].joinpath("setup.py").read_text()
        assert '"numpy"' in text
