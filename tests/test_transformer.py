"""Theorem 1: correctness, time bound, uniformity, restriction."""

from __future__ import annotations

import pytest

from repro.algorithms.fast_mis import fast_mis_bound, fast_mis_nonuniform
from repro.algorithms.hash_luby import hash_luby_bound, hash_luby_nonuniform
from repro.core import (
    AlternationDiverged,
    NonUniform,
    mis_pruning,
    render_trace,
    theorem1,
)
from repro.core.bounds import AdditiveBound, linear
from repro.local import LocalAlgorithm, NodeProcess
from repro.params import actual_parameters
from repro.problems import MIS


class TestTheorem1Correctness:
    def test_catalog_mis_correct(self, catalog):
        uni = theorem1(hash_luby_nonuniform(), mis_pruning())
        for name, graph in catalog.items():
            result = uni.run(graph, seed=3)
            assert MIS.is_solution(graph, {}, result.outputs), (
                name,
                MIS.violations(graph, {}, result.outputs)[:3],
            )
            assert result.completed

    def test_two_parameter_bound_correct(self, medium_gnp):
        uni = theorem1(fast_mis_nonuniform(), mis_pruning())
        result = uni.run(medium_gnp, seed=5)
        assert MIS.is_solution(medium_gnp, {}, result.outputs)

    def test_uniform_requires_nothing(self):
        uni = theorem1(hash_luby_nonuniform(), mis_pruning())
        assert uni.requires == ()

    def test_rejects_monte_carlo_kind(self):
        from repro.algorithms.luby import luby_mc_nonuniform

        with pytest.raises(ValueError):
            theorem1(luby_mc_nonuniform(), mis_pruning())

    def test_deterministic_given_seed(self, small_gnp):
        uni = theorem1(hash_luby_nonuniform(), mis_pruning())
        a = uni.run(small_gnp, seed=9)
        b = uni.run(small_gnp, seed=9)
        assert a.outputs == b.outputs
        assert a.rounds == b.rounds


class TestTheorem1TimeBound:
    """rounds(π) ≤ C · f* · s_f(f*) — the theorem's statement."""

    def test_additive_bound_overhead(self, catalog):
        uni = theorem1(fast_mis_nonuniform(), mis_pruning())
        for name, graph in catalog.items():
            if graph.n == 0:
                continue
            result = uni.run(graph, seed=2)
            params = actual_parameters(graph, ("Delta", "m"))
            params["Delta"] = max(1, params["Delta"])
            f_star = fast_mis_bound().value(params)
            # additive bounds: s_f = 1; the engine's geometric budgets
            # plus pruning give a small constant (≤ 10 with margin).
            assert result.rounds <= 10 * f_star + 64, (
                name,
                result.rounds,
                f_star,
            )

    def test_nonly_bound_overhead(self, catalog):
        uni = theorem1(hash_luby_nonuniform(), mis_pruning())
        for name, graph in catalog.items():
            result = uni.run(graph, seed=2)
            f_star = hash_luby_bound().value({"n": max(2, graph.n)})
            assert result.rounds <= 10 * f_star + 64, (name, result.rounds)


class TestRestriction:
    def test_budget_zero_defaults_everything(self, small_gnp):
        uni = theorem1(hash_luby_nonuniform(), mis_pruning())
        result = uni.run(small_gnp, seed=1, budget=0)
        assert not result.completed
        assert set(result.outputs.values()) == {0}
        assert result.rounds == 0

    def test_budget_respected(self, small_gnp):
        uni = theorem1(hash_luby_nonuniform(), mis_pruning())
        full = uni.run(small_gnp, seed=1)
        for budget in (5, full.rounds // 2, full.rounds):
            capped = uni.run(small_gnp, seed=1, budget=budget)
            assert capped.rounds <= budget

    def test_budget_at_full_time_completes(self, small_gnp):
        uni = theorem1(hash_luby_nonuniform(), mis_pruning())
        full = uni.run(small_gnp, seed=1)
        again = uni.run(small_gnp, seed=1, budget=full.rounds)
        assert again.completed
        assert again.outputs == full.outputs


class TestDivergenceDetection:
    def test_lying_bound_raises(self, path12):
        """A declared bound that is false must surface, not loop forever."""

        class Stubborn(NodeProcess):
            def start(self):
                return None

            def receive(self, inbox):
                return None  # never terminates, never correct

        broken = NonUniform(
            LocalAlgorithm("stubborn", Stubborn, requires=("n",)),
            AdditiveBound([linear("n", 1.0)]),
            name="stubborn",
        )
        uni = theorem1(broken, mis_pruning(), max_iterations=6)
        with pytest.raises(AlternationDiverged):
            uni.run(path12, seed=0)


class TestTrace:
    def test_render_trace_mentions_steps(self, small_gnp):
        uni = theorem1(hash_luby_nonuniform(), mis_pruning())
        result = uni.run(small_gnp, seed=4)
        text = render_trace(result)
        assert "alternating trace" in text
        assert "P prunes" in text
        assert "Observation 3.4" in text
