"""Shared fixtures: graph catalogue, identity schemes, SimGraph builders,
and the seeded delta-script generator behind the differential mutation
harness (``tests/test_service.py``, DESIGN.md D18)."""

from __future__ import annotations

import random
from types import SimpleNamespace

import networkx as nx
import pytest

from repro.graphs import families, identifiers
from repro.local import GraphDelta, SimGraph


def build(graph, *, ident_scheme="poly", seed=0):
    """Networkx graph -> SimGraph under a named identity scheme."""
    scheme = identifiers.SCHEMES[ident_scheme]
    if ident_scheme in ("sequential", "adversarial_path"):
        idents = scheme(graph)
    else:
        idents = scheme(graph, seed=seed)
    return SimGraph.from_networkx(graph, idents=idents)


@pytest.fixture(scope="session")
def catalog():
    """The small labelled family catalogue as SimGraphs (poly identities)."""
    return {
        name: build(graph, seed=11)
        for name, graph in families.family_catalog().items()
    }


@pytest.fixture(scope="session")
def small_gnp():
    return build(families.gnp(40, 0.1, seed=5), seed=6)


@pytest.fixture(scope="session")
def medium_gnp():
    return build(families.gnp(90, 0.06, seed=7), seed=8)


@pytest.fixture(scope="session")
def tree():
    return build(families.random_tree(50, seed=9), seed=10)


@pytest.fixture(scope="session")
def path12():
    return build(families.path(12), seed=12)


# ----------------------------------------------------------------------
# Differential mutation harness: seeded, shrinkable delta scripts (D18)
# ----------------------------------------------------------------------
class DeltaScript:
    """A seeded, replayable mutation script for the differential harness.

    ``ops`` is a sequence of ``("mutate", GraphDelta)`` and
    ``("rerun", spec)`` entries over the evolving graph that starts at
    ``base`` (a networkx graph) with identity map ``idents``.  Scripts
    are *prefix-closed*: every delta was generated against the graph
    state at its own position, so any prefix is itself a valid script —
    which is what makes shrinking sound.
    """

    def __init__(self, seed, base, idents, ops):
        self.seed = seed
        self.base = base
        self.idents = idents
        self.ops = ops

    def prefix(self, length):
        return DeltaScript(self.seed, self.base, self.idents,
                           self.ops[:length])

    def describe(self):
        lines = [
            f"DeltaScript(seed={self.seed}, n={self.base.number_of_nodes()}, "
            f"m={self.base.number_of_edges()}, ops={len(self.ops)}):"
        ]
        for i, (kind, payload) in enumerate(self.ops):
            if kind == "mutate":
                detail = (
                    f"{payload!r} +e{list(payload.add_edges)} "
                    f"-e{list(payload.del_edges)} "
                    f"+n{list(payload.add_nodes)} -n{list(payload.del_nodes)}"
                )
            else:
                detail = repr(payload)
            lines.append(f"  [{i:2d}] {kind}: {detail}")
        return "\n".join(lines)


def _random_delta(rnd, truth, state):
    """One random valid GraphDelta against ``truth``; mutates nothing."""
    nodes = list(truth.nodes())
    edges = list(truth.edges())
    del_edges = rnd.sample(edges, min(rnd.randrange(3), len(edges)))
    dropped = {frozenset(e) for e in del_edges}
    del_nodes = []
    if nodes and rnd.random() < 0.4 and len(nodes) > 6:
        del_nodes = [rnd.choice(nodes)]
    add_nodes = []
    if rnd.random() < 0.5:
        add_nodes = [(state["next_label"], state["next_ident"])]
        state["next_label"] += 1
        state["next_ident"] += 1
    final = [u for u in nodes if u not in del_nodes]
    final += [u for u, _ in add_nodes]
    add_edges = []
    tries = 0
    want = rnd.randrange(3) if not add_nodes else max(1, rnd.randrange(3))
    while len(add_edges) < want and tries < 30 and len(final) >= 2:
        tries += 1
        u, v = rnd.sample(final, 2)
        key = frozenset((u, v))
        present = truth.has_edge(u, v) and key not in dropped
        if present or key in dropped:
            continue
        if key in {frozenset(e) for e in add_edges}:
            continue
        add_edges.append((u, v))
    if not (del_edges or del_nodes or add_nodes or add_edges):
        # Force a non-trivial delta: toggle one edge.
        if edges:
            del_edges = [rnd.choice(edges)]
        else:
            u, v = rnd.sample(nodes, 2)
            add_edges = [(u, v)]
    return GraphDelta(
        add_nodes=add_nodes,
        del_nodes=del_nodes,
        add_edges=add_edges,
        del_edges=del_edges,
    )


def apply_delta_to_networkx(truth, idents, delta):
    """Apply a GraphDelta to the mutable networkx truth graph in place."""
    truth.remove_edges_from(delta.del_edges)
    truth.remove_nodes_from(delta.del_nodes)
    for u in delta.del_nodes:
        del idents[u]
    for u, ident in delta.add_nodes:
        truth.add_node(u)
        idents[u] = ident
    truth.add_edges_from(delta.add_edges)


def make_delta_script(seed, *, n=28, p=0.14, steps=12, rerun_specs=()):
    """Generate a prefix-closed random script of mutations and reruns.

    Each generated delta is valid for the evolving graph state at its
    position; reruns draw uniformly from ``rerun_specs`` (opaque dicts
    the executor interprets), and one final rerun per spec is appended
    so every spec is exercised after the last mutation.
    """
    rnd = random.Random(seed)
    base = families.gnp(n, p, seed=seed)
    idents = dict(identifiers.SCHEMES["poly"](base, seed=seed + 1))
    truth = nx.Graph(base)
    live_idents = dict(idents)
    state = {
        "next_label": max(truth.nodes()) + 1,
        "next_ident": max(live_idents.values()) + 1,
    }
    specs = list(rerun_specs) or [{}]
    ops = []
    for _ in range(steps):
        if rnd.random() < 0.6:
            delta = _random_delta(rnd, truth, state)
            apply_delta_to_networkx(truth, live_idents, delta)
            ops.append(("mutate", delta))
        else:
            ops.append(("rerun", rnd.choice(specs)))
    for spec in specs:
        ops.append(("rerun", spec))
    return DeltaScript(seed, base, idents, ops)


def shrink_to_minimal_failing_prefix(script, execute):
    """Bisect ``script`` to a minimal failing prefix and re-raise there.

    ``execute`` runs a script and raises ``AssertionError`` on
    divergence.  Deltas accumulate, so once the offending op is included
    every longer prefix fails too — the bisection invariant.  The
    minimal prefix is printed (its seed and ops replay it exactly)
    before re-executing it, so the raised error carries the smallest
    reproduction.
    """

    def fails(candidate):
        try:
            execute(candidate)
        except AssertionError:
            return True
        return False

    lo, hi = 1, len(script.ops)
    while lo < hi:
        mid = (lo + hi) // 2
        if fails(script.prefix(mid)):
            hi = mid
        else:
            lo = mid + 1
    minimal = script.prefix(hi)
    print(f"\nminimal failing prefix ({hi} of {len(script.ops)} ops):")
    print(minimal.describe())
    execute(minimal)  # re-raise with the minimal reproduction
    raise AssertionError(
        "script failed but its minimal prefix passed on replay — "
        "non-deterministic divergence:\n" + minimal.describe()
    )


@pytest.fixture(scope="session")
def delta_harness():
    """The delta-script toolbox used by the differential harness."""
    return SimpleNamespace(
        DeltaScript=DeltaScript,
        make_script=make_delta_script,
        apply_to_networkx=apply_delta_to_networkx,
        shrink=shrink_to_minimal_failing_prefix,
    )
