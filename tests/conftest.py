"""Shared fixtures: graph catalogue, identity schemes, SimGraph builders."""

from __future__ import annotations

import pytest

from repro.graphs import families, identifiers
from repro.local import SimGraph


def build(graph, *, ident_scheme="poly", seed=0):
    """Networkx graph -> SimGraph under a named identity scheme."""
    scheme = identifiers.SCHEMES[ident_scheme]
    if ident_scheme in ("sequential", "adversarial_path"):
        idents = scheme(graph)
    else:
        idents = scheme(graph, seed=seed)
    return SimGraph.from_networkx(graph, idents=idents)


@pytest.fixture(scope="session")
def catalog():
    """The small labelled family catalogue as SimGraphs (poly identities)."""
    return {
        name: build(graph, seed=11)
        for name, graph in families.family_catalog().items()
    }


@pytest.fixture(scope="session")
def small_gnp():
    return build(families.gnp(40, 0.1, seed=5), seed=6)


@pytest.fixture(scope="session")
def medium_gnp():
    return build(families.gnp(90, 0.06, seed=7), seed=8)


@pytest.fixture(scope="session")
def tree():
    return build(families.random_tree(50, seed=9), seed=10)


@pytest.fixture(scope="session")
def path12():
    return build(families.path(12), seed=12)
