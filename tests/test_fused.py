"""Fused multi-run engine (DESIGN.md D16).

The contract under test: every lane of a :func:`repro.local.run_many`
call is *field-for-field identical* to its solo :func:`repro.local.run`
— outputs, finish rounds, total rounds, message counts, truncation sets
— under both rng schemes, across heterogeneous graphs, algorithms and
seeds, whether the lane fused into a block-diagonal slab or fell back
to a solo run.  Plus the machinery around it: slab caching, per-lane
termination/cancellation, backend wiring, and speculative racing.
"""

from __future__ import annotations

import gc

import pytest

from repro.algorithms import capability_table
from repro.algorithms.fast_mis import fast_mis
from repro.algorithms.hash_luby import hash_luby_mis
from repro.algorithms.luby import luby_mc, luby_mis
from repro.algorithms.ruling_sets import bitwise_ruling_set
from repro.core import (
    AlternationDiverged,
    RaceArm,
    mis_pruning,
    render_trace,
    speculative_race,
)
from repro.errors import LaneCancelled, NonTerminationError, ParameterError
from repro.graphs import families, identifiers
from repro.local import (
    SimGraph,
    run,
    run_many,
    slab_cache_stats,
    use_backend,
    zero_round_algorithm,
)
from repro.local import batch as batch_module
from repro.local.algorithm import capabilities_of
from repro.local.fused import fused_slab_of
from repro.problems import MIS

numpy = pytest.importorskip("numpy")


def build(graph, *, seed=0):
    idents = identifiers.SCHEMES["poly"](graph, seed=seed)
    return SimGraph.from_networkx(graph, idents=idents)


def fields_of(result):
    return (
        dict(result.outputs),
        dict(result.finish_round),
        result.rounds,
        result.messages,
        set(result.truncated),
        result.max_message_bits,
    )


def jobs_matrix(small_gnp, medium_gnp):
    """Heterogeneous lanes: two graphs, four algorithms, distinct seeds."""
    mis_algo = luby_mis()
    m = small_gnp.edge_count()
    delta = small_gnp.max_degree
    return [
        (small_gnp, mis_algo, {"seed": 1}),
        (small_gnp, luby_mc(), {"guesses": {"n": 40}, "seed": 2}),
        (medium_gnp, hash_luby_mis(), {"guesses": {"n": 90}, "seed": 3}),
        (small_gnp, fast_mis(), {"guesses": {"m": m, "Delta": delta}, "seed": 4}),
        (medium_gnp, mis_algo, {"seed": 5, "salt": "other"}),
    ]


def solo_twin(job, *, rng, **kwargs):
    graph, algorithm = job[0], job[1]
    opts = job[2] if len(job) == 3 else {}
    return run(
        graph,
        algorithm,
        guesses=opts.get("guesses"),
        seed=opts.get("seed", 0),
        salt=opts.get("salt", 0),
        rng=rng,
        **kwargs,
    )


class TestBitIdentity:
    @pytest.mark.parametrize("rng", ("counter", "mt"))
    def test_heterogeneous_matrix(self, small_gnp, medium_gnp, rng):
        jobs = jobs_matrix(small_gnp, medium_gnp)
        fused = run_many(jobs, rng=rng)
        for job, result in zip(jobs, fused):
            solo = solo_twin(job, rng=rng)
            assert fields_of(result) == fields_of(solo), job[1].name

    @pytest.mark.parametrize("rng", ("counter", "mt"))
    def test_truncated_lanes_match_solo(self, small_gnp, medium_gnp, rng):
        jobs = jobs_matrix(small_gnp, medium_gnp)
        fused = run_many(jobs, max_rounds=1, default_output=0, rng=rng)
        for job, result in zip(jobs, fused):
            solo = solo_twin(job, rng=rng, max_rounds=1, default_output=0)
            assert fields_of(result) == fields_of(solo), job[1].name
            assert result.rounds <= 1

    def test_chunked_lanes_match_unchunked(self, small_gnp):
        jobs = [(small_gnp, luby_mis(), {"seed": s}) for s in range(5)]
        wide = run_many(jobs)
        narrow = run_many(jobs, lanes=2)
        for a, b in zip(wide, narrow):
            assert fields_of(a) == fields_of(b)

    def test_shared_slab_chunks_are_isolated(self, medium_gnp):
        # Eight lanes over one graph chunked to width 2: all four
        # chunks hash to the same cached slab and step concurrently,
        # so each must fork its own edge window — a lane settling in
        # one chunk must not shrink the slab under the others.
        algo = luby_mis()
        jobs = [(medium_gnp, algo, {"seed": s}) for s in range(8)]
        results = run_many(jobs, lanes=2)
        for job, result in zip(jobs, results):
            assert fields_of(result) == fields_of(solo_twin(job, rng=None))

    def test_scalar_and_per_lane_seeds(self, small_gnp):
        algo = luby_mis()
        jobs = [(small_gnp, algo)] * 3
        by_list = run_many(jobs, seeds=[4, 4, 4], salts=[0, 0, "x"])
        by_scalar = run_many(jobs, seeds=4)
        assert fields_of(by_list[0]) == fields_of(by_scalar[0])
        assert fields_of(by_list[1]) == fields_of(by_scalar[1])
        assert by_list[2].outputs != by_list[0].outputs or (
            by_list[2].finish_round != by_list[0].finish_round
        )


class TestTermination:
    def test_nontermination_lane_returned(self, path12):
        finishes = build(families.gnp(5, 0.0, seed=1), seed=2)
        jobs = [(path12, luby_mis()), (finishes, luby_mis())]
        results = run_many(jobs, max_rounds=1, errors="return")
        assert isinstance(results[0], NonTerminationError)
        assert results[0].unfinished
        assert results[1].rounds == 0
        assert set(results[1].outputs.values()) == {1}

    def test_nontermination_lane_raises_by_default(self, path12):
        with pytest.raises(NonTerminationError):
            run_many([(path12, luby_mis())], max_rounds=1)

    def test_truncate_requires_max_rounds(self, small_gnp):
        with pytest.raises(ParameterError):
            run_many([(small_gnp, luby_mis())], truncate=True)

    def test_errors_policy_validated(self, small_gnp):
        with pytest.raises(ParameterError):
            run_many([(small_gnp, luby_mis())], errors="ignore")


class TestCancellation:
    def test_winner_cancels_losers(self, small_gnp):
        algo = luby_mis()
        jobs = [(small_gnp, algo, {"seed": s}) for s in range(3)]
        order = []

        def first_wins(lane_index, result):
            order.append(lane_index)
            if len(order) == 1:
                return [j for j in range(3) if j != lane_index]
            return ()

        results = run_many(jobs, on_lane_done=first_wins)
        winner = order[0]
        assert fields_of(results[winner]) == fields_of(
            solo_twin(jobs[winner], rng=None)
        )
        losers = [r for j, r in enumerate(results) if j != winner]
        assert all(isinstance(r, LaneCancelled) for r in losers)
        assert all(r.winner == winner for r in losers)
        # Cancelled lanes never raise, even under errors="raise".
        assert len(order) == 1


class TestFallbacks:
    def test_uncertified_algorithm_runs_solo(self, small_gnp):
        algo = bitwise_ruling_set()
        caps = capabilities_of(algo)
        assert caps["supports_batch"] and not caps["supports_fuse"]
        m = small_gnp.edge_count()
        jobs = [
            (small_gnp, algo, {"guesses": {"m": m}, "seed": 3}),
            (small_gnp, luby_mis()),
        ]
        fused = run_many(jobs)
        for job, result in zip(jobs, fused):
            assert fields_of(result) == fields_of(solo_twin(job, rng=None))

    def test_numpy_free_environment(self, small_gnp, monkeypatch):
        jobs = [(small_gnp, luby_mis(), {"seed": s}) for s in range(3)]
        expected = [fields_of(r) for r in run_many(jobs)]
        monkeypatch.setattr(batch_module, "_np", None)
        degraded = run_many(jobs)
        assert [fields_of(r) for r in degraded] == expected

    def test_reference_backend_never_fuses(self, small_gnp):
        jobs = [(small_gnp, luby_mis(), {"seed": s}) for s in range(2)]
        via_ref = run_many(jobs, backend="reference")
        for job, result in zip(jobs, via_ref):
            solo = solo_twin(job, rng=None, backend="reference")
            assert fields_of(result) == fields_of(solo)


class TestSlabCache:
    def test_cache_hits_on_reuse(self, small_gnp):
        jobs = [(small_gnp, luby_mis(), {"seed": s}) for s in range(4)]
        run_many(jobs)
        before = slab_cache_stats()
        run_many(jobs, seeds=9)
        after = slab_cache_stats()
        assert after["hits"] > before["hits"]
        assert after["misses"] == before["misses"]

    def test_compiled_graph_mirror_is_shared(self, small_gnp):
        cg = small_gnp.compiled()
        mirror = batch_module.batch_graph_of(cg)
        assert batch_module.batch_graph_of(cg) is mirror
        slab = fused_slab_of((cg, cg))
        assert fused_slab_of((cg, cg)) is slab
        assert slab.n == 2 * mirror.n

    def test_eviction_on_graph_collection(self):
        graph = build(families.gnp(12, 0.2, seed=3), seed=4)
        run_many([(graph, luby_mis()), (graph, luby_mis(), {"seed": 1})])
        before = slab_cache_stats()
        del graph
        gc.collect()
        after = slab_cache_stats()
        assert after["evictions"] > before["evictions"]

    def test_session_mutation_invalidates_every_cache_layer(self):
        """The stale-cache footgun, closed (D18): after a session
        mutate, the batch mirror, partition plans and draw-slab cache
        all serve the *new* topology — the retired graph's slab entry is
        evicted deterministically even though we still reference it."""
        from repro.local import GraphDelta, open_session
        from repro.local.fused import _SLAB_CACHE

        graph = build(families.gnp(24, 0.15, seed=6), seed=7)
        with open_session(graph) as session:
            jobs = [luby_mis() for _ in range(3)]
            session.rerun_many(jobs, seeds=[1, 2, 3])
            old_cg = session.graph.compiled()
            old_mirror = batch_module.batch_graph_of(old_cg)
            old_plan = session.graph.partition(2)
            assert any(id(old_cg) in key for key in _SLAB_CACHE)
            before = slab_cache_stats()

            edge = next(iter(session.graph.edges()))
            session.mutate(GraphDelta(del_edges=[edge]))

            # Slab of the retired topology: evicted now, not at GC time
            # (this test still holds old_cg alive).
            after = slab_cache_stats()
            assert after["evictions"] > before["evictions"]
            assert not any(id(old_cg) in key for key in _SLAB_CACHE)

            # Identity-keyed layers: the new graph is a new object with
            # empty caches — nothing can serve stale bits.
            new_cg = session.graph.compiled()
            assert new_cg is not old_cg
            assert batch_module.batch_graph_of(new_cg) is not old_mirror
            assert session.graph.partition(2) is not old_plan

            # The post-mutate fused sweep equals its solo runs on the
            # new topology (a stale slab would diverge here).
            fused = session.rerun_many(jobs, seeds=[4, 5, 6])
            for seed, lane in zip([4, 5, 6], fused):
                solo = run(session.graph, luby_mis(), seed=seed,
                           backend="compiled")
                assert fields_of(lane) == fields_of(solo)


class TestBackendWiring:
    def test_use_backend_fused_lanes(self, small_gnp):
        jobs = [(small_gnp, luby_mis(), {"seed": s}) for s in range(4)]
        plain = run_many(jobs)
        with use_backend("fused", lanes=2):
            chunked = run_many(jobs)
        for a, b in zip(plain, chunked):
            assert fields_of(a) == fields_of(b)

    def test_lanes_require_fused_backend(self):
        with pytest.raises(ParameterError):
            with use_backend("batch", lanes=2):
                pass

    def test_lanes_validated(self, small_gnp):
        with pytest.raises(ParameterError):
            run_many([(small_gnp, luby_mis())], lanes=0)
        with pytest.raises(ParameterError):
            with use_backend("fused", lanes=0):
                pass

    def test_job_shape_validated(self, small_gnp):
        with pytest.raises(ParameterError):
            run_many([(small_gnp,)])
        with pytest.raises(ParameterError):
            run_many([(small_gnp, luby_mis(), {"bogus": 1})])
        with pytest.raises(ParameterError):
            run_many([(small_gnp, luby_mc())])  # missing guess for n
        with pytest.raises(ParameterError):
            run_many([(small_gnp, luby_mis())] * 2, seeds=[1])

    def test_capability_table_publishes_supports_fuse(self):
        table = capability_table()
        assert table["luby"]["supports_fuse"] is True
        assert table["mis-fast"]["supports_fuse"] is True
        assert table["mis-nonly"]["supports_fuse"] is True
        for record in table.values():
            assert "supports_fuse" in record
            assert record["pruning"]["supports_fuse"] is False


class TestSpeculativeRace:
    def test_race_finds_verified_mis(self, small_gnp):
        m = small_gnp.edge_count()
        delta = small_gnp.max_degree
        arms = [
            luby_mis(),
            RaceArm(luby_mc(), guesses={"n": 4}),  # hopeless guess
            RaceArm(hash_luby_mis(), guesses={"n": 40}),
            RaceArm(fast_mis(), guesses={"m": m, "Delta": delta}),
        ]
        result = speculative_race(small_gnp, arms, mis_pruning(), seed=3)
        assert MIS.is_solution(small_gnp, {}, result.outputs)
        assert result.completed
        assert result.winner == arms[result.winner_index].name
        assert result.heats == len(result.steps)
        trace = render_trace(result)
        assert "via fused/" in trace

    def test_race_diverges_within_max_heats(self, small_gnp):
        # An all-zeros "MIS" is independent but never maximal on a graph
        # with edges, so this arm can never pass verification.
        hopeless = zero_round_algorithm("all-out", lambda ctx: 0)
        with pytest.raises(AlternationDiverged):
            speculative_race(
                small_gnp,
                [hopeless],
                mis_pruning(),
                seed=1,
                max_heats=2,
            )

    def test_race_arm_requires_guesses(self):
        with pytest.raises(ParameterError):
            RaceArm(luby_mc())

    def test_race_needs_arms(self, small_gnp):
        with pytest.raises(ParameterError):
            speculative_race(small_gnp, [], mis_pruning())
