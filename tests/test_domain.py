"""Domain contract: physical and virtual execution must agree."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.algorithms.luby import luby_mis
from repro.core.domain import (
    PhysicalDomain,
    VirtualDomain,
    as_domain,
    VIRTUAL_OVERHEAD,
)
from repro.graphs import clique_product_spec, line_graph_spec
from repro.local import SimGraph, zero_round_algorithm


def sim(graph):
    return SimGraph.from_networkx(graph)


@pytest.fixture()
def physical():
    return PhysicalDomain(sim(nx.cycle_graph(8)))


@pytest.fixture()
def virtual():
    g = sim(nx.cycle_graph(8))
    return VirtualDomain(g, line_graph_spec(g))


class TestCoercion:
    def test_simgraph_coerces(self):
        domain = as_domain(sim(nx.path_graph(3)))
        assert isinstance(domain, PhysicalDomain)

    def test_domain_passes_through(self, physical):
        assert as_domain(physical) is physical

    def test_rejects_other(self):
        with pytest.raises(TypeError):
            as_domain(nx.path_graph(3))


class TestPhysicalDomain:
    def test_node_accessors(self, physical):
        u = physical.nodes[0]
        assert physical.degree(u) == 2
        assert physical.ident(u) >= 1
        assert set(physical.neighbors(u)) <= set(physical.nodes)
        assert physical.max_degree == 2

    def test_run_restricted_charges_budget(self, physical):
        algo = zero_round_algorithm("noop", lambda ctx: 0)
        outputs, charged = physical.run_restricted(algo, 7)
        assert charged == 7
        assert set(outputs) == set(physical.nodes)

    def test_subgraph_returns_domain(self, physical):
        sub = physical.subgraph(list(physical.nodes)[:3])
        assert isinstance(sub, PhysicalDomain)
        assert sub.n == 3

    def test_as_simgraph_identity(self, physical):
        assert physical.as_simgraph() is physical.graph


class TestVirtualDomain:
    def test_accessors(self, virtual):
        assert virtual.n == 8  # cycle has 8 edges
        u = virtual.nodes[0]
        assert virtual.degree(u) == 2
        assert virtual.ident(u) >= 1

    def test_run_restricted_charges_dilated(self, virtual):
        algo = zero_round_algorithm("noop", lambda ctx: 0)
        budget = 5
        _, charged = virtual.run_restricted(algo, budget)
        assert charged == budget * virtual.spec.dilation + VIRTUAL_OVERHEAD

    def test_run_full_valid_mis_on_line_graph(self, virtual):
        outputs, rounds = virtual.run_full(luby_mis(), seed=3)
        explicit = virtual.as_simgraph()
        from repro.problems import MIS

        assert MIS.is_solution(explicit, {}, outputs)
        assert rounds >= 1

    def test_subgraph_restricts_spec(self, virtual):
        keep = list(virtual.nodes)[:4]
        sub = virtual.subgraph(keep)
        assert isinstance(sub, VirtualDomain)
        assert sub.n == 4
        for v in keep:
            assert set(sub.neighbors(v)) <= set(keep)

    def test_clique_product_domain_dilation_one(self):
        g = sim(nx.path_graph(4))
        domain = VirtualDomain(g, clique_product_spec(g))
        algo = zero_round_algorithm("noop", lambda ctx: 0)
        _, charged = domain.run_restricted(algo, 5)
        assert charged == 5 * 1 + VIRTUAL_OVERHEAD

    def test_max_ident_unique_space(self, virtual):
        idents = [virtual.ident(v) for v in virtual.nodes]
        assert len(set(idents)) == len(idents)
